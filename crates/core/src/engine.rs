//! The unified backup-engine API.
//!
//! The paper's two strategies — logical (file-by-file `dump`/`restore`)
//! and physical (block-image dump/restore) — share a shape: plan what to
//! move, move it to tape, move it back. [`BackupEngine`] captures that
//! shape so harnesses, tests, and operators can drive either strategy
//! through one interface:
//!
//! ```ignore
//! let mut engine: Box<dyn BackupEngine> =
//!     Box::new(LogicalEngine::new(DumpOptions::builder().subtree("/").level(0).build()));
//! let plan = engine.plan(&fs);
//! let dumped = engine.dump(&mut fs, &mut drive)?;
//! let restored = engine.restore(&mut target, &mut drive)?;
//! ```
//!
//! Engines write through the medium-agnostic [`simkit::media::Media`]
//! trait rather than a concrete drive, so the same dump can target one
//! [`tape::TapeDrive`], a [`tape::DrivePool`] striping four, a network
//! replication target, or a chaos stack ([`tape::RetryMedia`] over
//! [`tape::FaultProxy`]) injecting and absorbing deterministic faults.
//! `&mut TapeDrive` coerces to `&mut dyn Media`, so plain-drive call sites
//! read the same as before. Media failures surface uniformly as
//! [`simkit::media::MediaError`], whatever carried the bytes.
//!
//! The free functions ([`crate::logical::dump::dump`],
//! [`crate::physical::dump::image_dump_full`], ...) remain the low-level
//! entry points; the engines delegate to them and translate their
//! per-strategy error types into one [`BackupError`].

use raid::RaidError;
use simkit::media::Media;
use simkit::media::MediaError;
use wafl::Wafl;

use crate::logical::catalog::DumpCatalog;
use crate::logical::dump::DumpOptions;
use crate::logical::format::DumpError;
use crate::physical::format::ImageError;
use crate::report::Profiler;

/// One error type across both strategies.
///
/// `#[non_exhaustive]` on both the struct and [`BackupErrorKind`]: more
/// strategies (and more failure classes) can appear without breaking
/// downstream matches.
#[derive(Debug)]
#[non_exhaustive]
pub struct BackupError {
    /// The operation in flight when the failure surfaced ("logical dump",
    /// "image restore", ...).
    pub op: &'static str,
    /// The underlying strategy-specific error.
    pub kind: BackupErrorKind,
}

/// The strategy-specific cause inside a [`BackupError`].
#[derive(Debug)]
#[non_exhaustive]
pub enum BackupErrorKind {
    /// The logical dump/restore path failed.
    Logical(DumpError),
    /// The physical image path failed.
    Physical(ImageError),
    /// The backup medium itself (tape drive, network link) failed.
    Media(MediaError),
    /// Every retry of a transient media fault failed: the default
    /// [`simkit::retry::RetryPolicy`] backed off, re-drove the operation,
    /// and gave up. Permanent by construction.
    Exhausted {
        /// Attempts made (including the first).
        attempts: u32,
        /// The transient error observed on the final attempt.
        last: MediaError,
    },
    /// The RAID layer under the dump lost more redundancy than parity can
    /// cover (or exhausted its own member retries) — the volume itself is
    /// degraded past what a backup can mask.
    Degraded(RaidError),
}

impl BackupError {
    /// Replaces the operation context (the `From` impls default it to
    /// `"backup"`).
    pub fn during(mut self, op: &'static str) -> BackupError {
        self.op = op;
        self
    }

    /// Whether retrying the whole operation may succeed. Exhausted retries
    /// and degraded-volume failures are permanent; a bare transient media
    /// error (surfaced without a retry layer in the stack) is not.
    pub fn is_transient(&self) -> bool {
        match &self.kind {
            BackupErrorKind::Media(e) => e.is_transient(),
            BackupErrorKind::Logical(DumpError::Media(e)) => e.is_transient(),
            BackupErrorKind::Physical(ImageError::Media(e)) => e.is_transient(),
            BackupErrorKind::Physical(ImageError::Raid(e)) => e.is_transient(),
            _ => false,
        }
    }
}

impl std::fmt::Display for BackupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            BackupErrorKind::Logical(e) => write!(f, "{} failed: {e}", self.op),
            BackupErrorKind::Physical(e) => write!(f, "{} failed: {e}", self.op),
            BackupErrorKind::Media(e) => write!(f, "{} failed: {e}", self.op),
            BackupErrorKind::Exhausted { attempts, last } => {
                write!(f, "{} failed after {attempts} attempts: {last}", self.op)
            }
            BackupErrorKind::Degraded(e) => {
                write!(f, "{} failed on a degraded volume: {e}", self.op)
            }
        }
    }
}

impl std::error::Error for BackupError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match &self.kind {
            BackupErrorKind::Logical(e) => Some(e),
            BackupErrorKind::Physical(e) => Some(e),
            BackupErrorKind::Media(e) => Some(e),
            BackupErrorKind::Exhausted { last, .. } => Some(last),
            BackupErrorKind::Degraded(e) => Some(e),
        }
    }
}

impl From<DumpError> for BackupError {
    fn from(e: DumpError) -> BackupError {
        let kind = match e {
            DumpError::Media(m) => media_kind(m),
            other => BackupErrorKind::Logical(other),
        };
        BackupError { op: "backup", kind }
    }
}

impl From<ImageError> for BackupError {
    fn from(e: ImageError) -> BackupError {
        let kind = match e {
            ImageError::Media(m) => media_kind(m),
            ImageError::Raid(
                r @ (RaidError::TooManyFailures { .. } | RaidError::Exhausted { .. }),
            ) => BackupErrorKind::Degraded(r),
            other => BackupErrorKind::Physical(other),
        };
        BackupError { op: "backup", kind }
    }
}

impl From<MediaError> for BackupError {
    fn from(e: MediaError) -> BackupError {
        BackupError {
            op: "backup",
            kind: media_kind(e),
        }
    }
}

/// Classifies a media error: exhausted retry stacks get their own kind so
/// callers can match on permanence without unwrapping the media layer.
fn media_kind(e: MediaError) -> BackupErrorKind {
    match e {
        MediaError::Exhausted { attempts, last } => BackupErrorKind::Exhausted {
            attempts,
            last: *last,
        },
        other => BackupErrorKind::Media(other),
    }
}

/// What an engine intends to do, computed without touching tape.
#[derive(Debug, Clone)]
pub struct BackupPlan {
    /// Strategy name ("logical" or "physical").
    pub strategy: &'static str,
    /// Incremental level (always 0 for a full physical dump).
    pub level: u8,
    /// Subtree covered ("/" = whole volume; physical is always "/").
    pub subtree: String,
    /// Stage names the dump will run, in order.
    pub stages: Vec<&'static str>,
    /// Blocks the strategy expects to move (active blocks for logical,
    /// all allocated blocks — snapshots included — for physical).
    pub estimated_blocks: u64,
    /// The block estimate in bytes.
    pub estimated_bytes: u64,
}

/// What a dump or restore moved, uniformly across strategies.
///
/// Strategy-specific detail (warnings, inode maps, snapshot names) stays
/// on the per-strategy outcome types; drive the free functions directly
/// when you need it.
#[derive(Debug)]
pub struct Outcome {
    /// Per-stage resource profiles (spans included).
    pub profiler: Profiler,
    /// Files moved (0 for physical — it does not know about files).
    pub files: u64,
    /// Directories moved (0 for physical).
    pub dirs: u64,
    /// Data blocks moved.
    pub blocks: u64,
    /// Bytes that crossed the tape interface.
    pub tape_bytes: u64,
    /// Media retries the retry layer absorbed during the operation (0
    /// unless fault injection was armed and a [`tape::RetryMedia`] or a
    /// RAID retry policy was in the stack).
    pub retries: u64,
    /// Whether the RAID layer served any reads in degraded mode (parity
    /// reconstruction standing in for a failed or faulting member).
    pub degraded: bool,
}

/// Reading of the process-wide retry/degradation counters, taken before
/// and after an operation so the [`Outcome`] can report the deltas.
#[derive(Debug, Clone, Copy)]
struct FaultCounters {
    retries: u64,
    degraded_reads: u64,
}

impl FaultCounters {
    fn read() -> FaultCounters {
        FaultCounters {
            retries: obs::counter("media.retries").get() + obs::counter("raid.retries").get(),
            degraded_reads: obs::counter("raid.degraded_reads").get(),
        }
    }
}

/// A backup strategy that can plan, dump, and restore.
pub trait BackupEngine {
    /// Strategy name ("logical" or "physical").
    fn name(&self) -> &'static str;

    /// Computes what a dump would move, without touching the tape.
    fn plan(&self, fs: &Wafl) -> BackupPlan;

    /// Dumps from `fs` to `media` (a drive, a pool, or a chaos stack).
    fn dump(&mut self, fs: &mut Wafl, media: &mut dyn Media) -> Result<Outcome, BackupError>;

    /// Restores from `media` into `fs`.
    ///
    /// Logical restore rebuilds files through the file system; physical
    /// restore writes raw blocks onto the volume underneath `fs`, so the
    /// caller must remount (crash + mount) before using the file system —
    /// mirroring the real procedure, where an image restore happens on an
    /// unmounted volume.
    fn restore(&mut self, fs: &mut Wafl, media: &mut dyn Media) -> Result<Outcome, BackupError>;
}

/// The logical (file-based) strategy: BSD-style dump/restore through the
/// file system, with incremental levels and a dumpdates catalog.
#[derive(Debug, Default)]
pub struct LogicalEngine {
    opts: DumpOptions,
    catalog: DumpCatalog,
    restore_target: String,
}

impl LogicalEngine {
    /// An engine dumping per `opts` and restoring into "/".
    pub fn new(opts: DumpOptions) -> LogicalEngine {
        LogicalEngine {
            opts,
            catalog: DumpCatalog::new(),
            restore_target: "/".into(),
        }
    }

    /// Changes the directory restores land in.
    pub fn with_restore_target(mut self, target: impl Into<String>) -> LogicalEngine {
        self.restore_target = target.into();
        self
    }

    /// The dumpdates catalog accumulated across dumps (incremental bases).
    pub fn catalog(&self) -> &DumpCatalog {
        &self.catalog
    }
}

impl BackupEngine for LogicalEngine {
    fn name(&self) -> &'static str {
        "logical"
    }

    fn plan(&self, fs: &Wafl) -> BackupPlan {
        let blocks = fs.blkmap().count_plane(0);
        let mut stages = vec![
            "creating snapshot",
            "mapping files and directories",
            "dumping directories",
            "dumping files",
        ];
        if !self.opts.keep_snapshot {
            stages.push("deleting snapshot");
        }
        BackupPlan {
            strategy: "logical",
            level: self.opts.level,
            subtree: self.opts.subtree.clone(),
            stages,
            estimated_blocks: blocks,
            estimated_bytes: blocks * blockdev::BLOCK_SIZE as u64,
        }
    }

    fn dump(&mut self, fs: &mut Wafl, media: &mut dyn Media) -> Result<Outcome, BackupError> {
        let before = FaultCounters::read();
        let out = crate::logical::dump::dump(fs, media, &mut self.catalog, &self.opts)
            .map_err(|e| BackupError::from(e).during("logical dump"))?;
        let after = FaultCounters::read();
        Ok(Outcome {
            profiler: out.profiler,
            files: out.files,
            dirs: out.dirs,
            blocks: out.data_blocks,
            tape_bytes: out.tape_bytes,
            retries: after.retries - before.retries,
            degraded: after.degraded_reads > before.degraded_reads,
        })
    }

    fn restore(&mut self, fs: &mut Wafl, media: &mut dyn Media) -> Result<Outcome, BackupError> {
        let before = FaultCounters::read();
        let out = crate::logical::restore::restore(fs, media, &self.restore_target)
            .map_err(|e| BackupError::from(e).during("logical restore"))?;
        let after = FaultCounters::read();
        let tape_bytes = out.profiler.total_tape_bytes();
        Ok(Outcome {
            profiler: out.profiler,
            files: out.files,
            dirs: out.dirs,
            blocks: out.data_blocks,
            tape_bytes,
            retries: after.retries - before.retries,
            degraded: after.degraded_reads > before.degraded_reads,
        })
    }
}

/// The physical (block-image) strategy: streams allocated blocks through
/// the RAID bypass, snapshots included.
#[derive(Debug)]
pub struct PhysicalEngine {
    snapshot_name: String,
}

impl PhysicalEngine {
    /// An engine anchoring its dumps to snapshot `snapshot_name`.
    pub fn new(snapshot_name: impl Into<String>) -> PhysicalEngine {
        PhysicalEngine {
            snapshot_name: snapshot_name.into(),
        }
    }
}

impl Default for PhysicalEngine {
    fn default() -> PhysicalEngine {
        PhysicalEngine::new("image.base")
    }
}

impl BackupEngine for PhysicalEngine {
    fn name(&self) -> &'static str {
        "physical"
    }

    fn plan(&self, fs: &Wafl) -> BackupPlan {
        let blkmap = fs.blkmap();
        let blocks = blkmap.nblocks() - blkmap.count_free();
        BackupPlan {
            strategy: "physical",
            level: 0,
            subtree: "/".into(),
            stages: vec!["creating snapshot", "dumping blocks"],
            estimated_blocks: blocks,
            estimated_bytes: blocks * blockdev::BLOCK_SIZE as u64,
        }
    }

    fn dump(&mut self, fs: &mut Wafl, media: &mut dyn Media) -> Result<Outcome, BackupError> {
        let before = FaultCounters::read();
        let out = crate::physical::dump::image_dump_full(fs, media, &self.snapshot_name)
            .map_err(|e| BackupError::from(e).during("image dump"))?;
        let after = FaultCounters::read();
        Ok(Outcome {
            profiler: out.profiler,
            files: 0,
            dirs: 0,
            blocks: out.blocks,
            tape_bytes: out.tape_bytes,
            retries: after.retries - before.retries,
            degraded: after.degraded_reads > before.degraded_reads,
        })
    }

    fn restore(&mut self, fs: &mut Wafl, media: &mut dyn Media) -> Result<Outcome, BackupError> {
        let meter = fs.meter();
        let costs = *fs.costs();
        let before = FaultCounters::read();
        let out = crate::physical::restore::image_restore(media, fs.volume_mut(), &meter, &costs)
            .map_err(|e| BackupError::from(e).during("image restore"))?;
        let after = FaultCounters::read();
        let tape_bytes = out.profiler.total_tape_bytes();
        Ok(Outcome {
            profiler: out.profiler,
            files: 0,
            dirs: 0,
            blocks: out.blocks,
            tape_bytes,
            retries: after.retries - before.retries,
            degraded: after.degraded_reads > before.degraded_reads,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_carry_operation_context() {
        let e = BackupError::from(DumpError::BadStream {
            reason: "empty tape".into(),
        })
        .during("logical restore");
        assert_eq!(e.op, "logical restore");
        assert!(matches!(e.kind, BackupErrorKind::Logical(_)));
        assert_eq!(
            e.to_string(),
            "logical restore failed: bad dump stream: empty tape"
        );
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn media_errors_convert() {
        let e = BackupError::from(MediaError::EndOfData);
        assert!(matches!(e.kind, BackupErrorKind::Media(_)));
        assert_eq!(e.op, "backup");
        // Tape-specific errors reach the same place through the
        // medium-agnostic conversion chain.
        let e = BackupError::from(MediaError::from(tape::TapeError::EndOfData));
        assert!(matches!(
            e.kind,
            BackupErrorKind::Media(MediaError::EndOfData)
        ));
    }

    #[test]
    fn exhausted_retries_surface_as_their_own_kind() {
        let e = BackupError::from(MediaError::Exhausted {
            attempts: 4,
            last: Box::new(MediaError::Offline),
        })
        .during("logical dump");
        assert!(matches!(
            e.kind,
            BackupErrorKind::Exhausted { attempts: 4, .. }
        ));
        // Exhaustion is the retry layer giving up: permanent by definition.
        assert!(!e.is_transient());
        assert!(e.to_string().contains("after 4 attempts"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn unrecoverable_raid_errors_surface_as_degraded() {
        let e = BackupError::from(crate::physical::format::ImageError::Raid(
            RaidError::TooManyFailures { group: 0 },
        ));
        assert!(matches!(e.kind, BackupErrorKind::Degraded(_)));
        assert!(!e.is_transient());
    }

    #[test]
    fn transient_classification_lifts_through_the_engine_error() {
        let soft = BackupError::from(MediaError::Soft { index: 7 });
        assert!(soft.is_transient());
        let hard = BackupError::from(MediaError::Hard { index: 7 });
        assert!(!hard.is_transient());
    }
}
