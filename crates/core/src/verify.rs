//! End-to-end verification of backups.
//!
//! Logical restores are verified structurally ([`compare_subtrees`]:
//! names, types, sizes, attributes, and every data block's content);
//! physical restores are verified at block level ([`compare_volumes`]),
//! the stronger guarantee — "the system you restore looks just like the
//! system you dumped, snapshots and all".

use raid::Volume;
use wafl::types::FileType;
use wafl::types::Ino;
use wafl::Wafl;
use wafl::WaflError;

/// Compares two whole file systems from their roots.
pub fn compare_trees(a: &mut Wafl, b: &mut Wafl) -> Result<Vec<String>, WaflError> {
    compare_subtrees(a, "/", b, "/")
}

/// Compares the subtree at `path_a` in `a` against `path_b` in `b`,
/// returning a human-readable list of differences (empty = identical).
pub fn compare_subtrees(
    a: &mut Wafl,
    path_a: &str,
    b: &mut Wafl,
    path_b: &str,
) -> Result<Vec<String>, WaflError> {
    let mut diffs = Vec::new();
    let ia = a.namei(path_a)?;
    let ib = b.namei(path_b)?;
    compare_inodes(a, ia, b, ib, path_a, &mut diffs)?;
    Ok(diffs)
}

fn compare_inodes(
    a: &mut Wafl,
    ia: Ino,
    b: &mut Wafl,
    ib: Ino,
    path: &str,
    diffs: &mut Vec<String>,
) -> Result<(), WaflError> {
    let sa = a.stat(ia)?;
    let sb = b.stat(ib)?;
    if sa.ftype != sb.ftype {
        diffs.push(format!("{path}: type {:?} vs {:?}", sa.ftype, sb.ftype));
        return Ok(());
    }
    if sa.ftype == FileType::File && sa.size != sb.size {
        diffs.push(format!("{path}: size {} vs {}", sa.size, sb.size));
    }
    // Attribute comparison: everything the dump format carries.
    let (aa, ab) = (&sa.attrs, &sb.attrs);
    if aa.perm != ab.perm || aa.uid != ab.uid || aa.gid != ab.gid {
        diffs.push(format!("{path}: unix attrs differ"));
    }
    if aa.dos_attrs != ab.dos_attrs || aa.dos_name != ab.dos_name || aa.dos_time != ab.dos_time {
        diffs.push(format!("{path}: DOS attrs differ"));
    }
    if aa.nt_acl != ab.nt_acl {
        diffs.push(format!("{path}: NT ACL differs"));
    }
    match sa.ftype {
        FileType::File => {
            if sa.nlink != sb.nlink {
                diffs.push(format!("{path}: link count {} vs {}", sa.nlink, sb.nlink));
            }
            let nblocks = sa.size.div_ceil(blockdev::BLOCK_SIZE as u64);
            for fbn in 0..nblocks {
                let ba = a.read_fbn(ia, fbn)?;
                let bb = b.read_fbn(ib, fbn)?;
                if !ba.same_content(&bb) {
                    diffs.push(format!("{path}: block {fbn} differs"));
                }
            }
        }
        FileType::Symlink => {
            let ta = a.readlink(ia)?;
            let tb = b.readlink(ib)?;
            if ta != tb {
                diffs.push(format!("{path}: symlink target {ta:?} vs {tb:?}"));
            }
        }
        FileType::Dir => {
            let ea = a.readdir(ia)?;
            let eb = b.readdir(ib)?;
            let names_a: Vec<&String> = ea.iter().map(|(n, _)| n).collect();
            let names_b: Vec<&String> = eb.iter().map(|(n, _)| n).collect();
            for n in &names_a {
                if !names_b.contains(n) {
                    diffs.push(format!("{path}/{n}: missing on right"));
                }
            }
            for n in &names_b {
                if !names_a.contains(n) {
                    diffs.push(format!("{path}/{n}: extra on right"));
                }
            }
            for (name, child_a) in &ea {
                if let Some((_, child_b)) = eb.iter().find(|(n, _)| n == name) {
                    let child_path = format!("{}/{}", path.trim_end_matches('/'), name);
                    compare_inodes(a, *child_a, b, *child_b, &child_path, diffs)?;
                }
            }
        }
    }
    Ok(())
}

/// Compares two volumes block by block, returning mismatching block
/// numbers (empty = bit-identical).
pub fn compare_volumes(a: &mut Volume, b: &mut Volume) -> Result<Vec<u64>, raid::RaidError> {
    if a.capacity() != b.capacity() {
        return Err(raid::RaidError::OutOfRange {
            bno: b.capacity(),
            capacity: a.capacity(),
        });
    }
    let mut mismatches = Vec::new();
    for bno in 0..a.capacity() {
        let ba = a.read_block(bno)?;
        let bb = b.read_block(bno)?;
        if !ba.same_content(&bb) {
            mismatches.push(bno);
        }
    }
    Ok(mismatches)
}

/// Compares only the blocks a block map marks as used — what image restore
/// actually guarantees (free blocks are never shipped).
pub fn compare_used_blocks(a: &mut Wafl, b: &mut Volume) -> Result<Vec<u64>, raid::RaidError> {
    let used: Vec<u64> = (0..a.blkmap().nblocks())
        .filter(|&bno| !a.blkmap().is_free(bno))
        .collect();
    let mut mismatches = Vec::new();
    for bno in used {
        let ba = a.volume_mut().read_block(bno)?;
        let bb = b.read_block(bno)?;
        if !ba.same_content(&bb) {
            mismatches.push(bno);
        }
    }
    Ok(mismatches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockdev::Block;
    use blockdev::DiskPerf;
    use raid::VolumeGeometry;
    use wafl::types::Attrs;
    use wafl::types::WaflConfig;
    use wafl::types::INO_ROOT;

    fn fs() -> Wafl {
        let vol = Volume::new(VolumeGeometry::uniform(1, 4, 2048, DiskPerf::ideal()));
        Wafl::format(vol, WaflConfig::default()).unwrap()
    }

    fn populate(fs: &mut Wafl) {
        let d = fs
            .create(INO_ROOT, "dir", FileType::Dir, Attrs::default())
            .unwrap();
        let f = fs
            .create(d, "file", FileType::File, Attrs::default())
            .unwrap();
        fs.write_fbn(f, 0, Block::Synthetic(1)).unwrap();
        fs.write_fbn(f, 2, Block::Synthetic(3)).unwrap();
        fs.set_attrs(
            f,
            Attrs {
                perm: 0o644,
                nt_acl: Some(vec![1]),
                ..Attrs::default()
            },
        )
        .unwrap();
    }

    #[test]
    fn identical_trees_have_no_diffs() {
        let mut a = fs();
        let mut b = fs();
        populate(&mut a);
        populate(&mut b);
        // Times differ (ticks), so scrub them for this test.
        let fa = a.namei("/dir/file").unwrap();
        let fb = b.namei("/dir/file").unwrap();
        let attrs = a.stat(fa).unwrap().attrs;
        b.set_attrs(fb, attrs).unwrap();
        let diffs = compare_trees(&mut a, &mut b).unwrap();
        assert!(diffs.is_empty(), "diffs: {diffs:?}");
    }

    #[test]
    fn differences_are_reported() {
        let mut a = fs();
        let mut b = fs();
        populate(&mut a);
        populate(&mut b);
        // Change one block on b.
        let fb = b.namei("/dir/file").unwrap();
        b.write_fbn(fb, 0, Block::Synthetic(99)).unwrap();
        // Add an extra file on a.
        a.create(INO_ROOT, "only-a", FileType::File, Attrs::default())
            .unwrap();
        let diffs = compare_trees(&mut a, &mut b).unwrap();
        assert!(diffs.iter().any(|d| d.contains("block 0")));
        assert!(diffs.iter().any(|d| d.contains("only-a")));
    }

    #[test]
    fn volume_compare_detects_single_block() {
        let geo = VolumeGeometry::uniform(1, 2, 64, DiskPerf::ideal());
        let mut a = Volume::new(geo.clone());
        let mut b = Volume::new(geo);
        for bno in 0..a.capacity() {
            a.write_block(bno, Block::Synthetic(bno)).unwrap();
            b.write_block(bno, Block::Synthetic(bno)).unwrap();
        }
        assert!(compare_volumes(&mut a, &mut b).unwrap().is_empty());
        b.write_block(17, Block::Synthetic(1_000_000)).unwrap();
        assert_eq!(compare_volumes(&mut a, &mut b).unwrap(), vec![17]);
    }

    #[test]
    fn size_mismatch_volumes_error() {
        let mut a = Volume::new(VolumeGeometry::uniform(1, 2, 64, DiskPerf::ideal()));
        let mut b = Volume::new(VolumeGeometry::uniform(1, 2, 32, DiskPerf::ideal()));
        assert!(compare_volumes(&mut a, &mut b).is_err());
    }
}
