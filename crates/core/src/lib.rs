#![warn(missing_docs)]

//! The paper's primary contribution: *logical* (file-based) and *physical*
//! (block-based) backup and restore for the WAFL file system, built with
//! comparable completeness so the two strategies can be compared fairly
//! (the paper's stated reason WAFL is "an intriguing test-bed").
//!
//! - [`logical`] — a BSD-style, kernel-integrated `dump`/`restore`:
//!   four-phase inode-ordered dump, self-contained archival stream format,
//!   incremental levels 0–9 with a dumpdates catalog, full restore with
//!   "desiccated" directory handling, single-file (stupidity) recovery, and
//!   cross-platform restore onto a foreign file system.
//! - [`physical`] — WAFL image dump/restore: streams allocated blocks in
//!   physical order through the RAID bypass, incremental dumps from
//!   snapshot bit-plane arithmetic (`B − A`, Table 1), restores that
//!   reproduce the volume *including all snapshots*, and the §6
//!   extension: incremental volume mirroring.
//! - [`engine`] — the unified [`engine::BackupEngine`] trait: both
//!   strategies behind one `plan`/`dump`/`restore` interface with a shared
//!   [`engine::BackupError`].
//! - [`target`] — medium selection: [`target::Target`] names where the
//!   stream lands (DLT drive or network link) and opens it, so the same
//!   engines dump to tape or replicate over the wire unchanged.
//! - [`report`] — stage profiles: each backup/restore stage records the CPU
//!   seconds and device traffic it generated (as [`obs`] spans), which the
//!   benchmark harness feeds to the fluid solver to produce the paper's
//!   tables.
//! - [`verify`] — end-to-end verification: tree/content comparison between
//!   live file systems and block-level comparison between volumes.

mod crashpoint;
pub mod engine;
pub mod logical;
pub mod physical;
pub mod report;
pub mod target;
pub mod verify;

pub use engine::BackupEngine;
pub use engine::BackupError;
pub use engine::BackupErrorKind;
pub use engine::BackupPlan;
pub use engine::LogicalEngine;
pub use engine::Outcome;
pub use engine::PhysicalEngine;
pub use logical::dump::LogicalCheckpoint;
pub use logical::dump::RestartableLogicalDump;
pub use physical::dump::ImageCheckpoint;
pub use physical::dump::RestartableImageDump;
pub use report::Profiler;
pub use report::StageProfile;
pub use report::StageSpan;
pub use target::Target;
