//! Crash-point plumbing shared by the dump/restore engines.
//!
//! One helper: ask the armed [`simkit::crash::CrashPlan`] (if any)
//! whether the power dies at `point`, counting a *fresh* trip once on
//! the `crash.trips` obs counter. Call sites wrap a `true` into their
//! layer's power-loss error (`ImageError::Interrupted`,
//! `DumpError::Interrupted`). With nothing armed this is a thread-local
//! read — zero metered cost, zero behavior change.

use simkit::crash::CrashPoint;

/// True when the power dies *now*, at `point`.
pub(crate) fn power_fire(point: CrashPoint) -> bool {
    let was_alive = simkit::crash::tripped().is_none();
    if simkit::crash::fire(point) {
        if was_alive {
            obs::counter("crash.trips").inc();
        }
        return true;
    }
    false
}
