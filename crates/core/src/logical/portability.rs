//! Cross-platform restore: the archival-format payoff of logical backup.
//!
//! "One of the benefits of the format has been the ability to
//! cross-restore BSD dump tapes from one system to another" (§3). This
//! module restores a dump stream onto a deliberately *foreign* file system
//! — a plain in-memory Unix-style tree that knows nothing about WAFL,
//! snapshots, DOS names or NT ACLs. Data and standard attributes survive;
//! the multiprotocol extensions are dropped with a warning, exactly the
//! "attributes may not map across the different file systems" caveat.

use std::collections::BTreeMap;

use blockdev::Block;
use simkit::media::Media;
use wafl::types::Ino;

use crate::logical::format::DumpError;
use crate::logical::format::DumpRecord;
use crate::logical::restore::next_record;
use crate::logical::restore::read_stream_head;

/// A node in the foreign file system.
#[derive(Debug, Clone)]
pub enum ForeignNode {
    /// A directory with Unix attributes.
    Dir {
        /// Children by name.
        entries: BTreeMap<String, ForeignNode>,
        /// Unix permission bits.
        perm: u16,
        /// Owner.
        uid: u32,
        /// Group.
        gid: u32,
    },
    /// A file with Unix attributes and sparse block contents.
    File {
        /// Exact byte size.
        size: u64,
        /// Present blocks by file block number (holes absent).
        blocks: BTreeMap<u64, Block>,
        /// Unix permission bits.
        perm: u16,
        /// Owner.
        uid: u32,
        /// Group.
        gid: u32,
        /// Modification time.
        mtime: u64,
    },
}

impl ForeignNode {
    fn new_dir(perm: u16, uid: u32, gid: u32) -> ForeignNode {
        ForeignNode::Dir {
            entries: BTreeMap::new(),
            perm,
            uid,
            gid,
        }
    }

    /// Looks up a path ("a/b/c") below this node.
    pub fn resolve(&self, path: &str) -> Option<&ForeignNode> {
        let mut node = self;
        for comp in path.split('/').filter(|c| !c.is_empty()) {
            match node {
                ForeignNode::Dir { entries, .. } => node = entries.get(comp)?,
                ForeignNode::File { .. } => return None,
            }
        }
        Some(node)
    }

    /// Counts files under this node.
    pub fn count_files(&self) -> u64 {
        match self {
            ForeignNode::File { .. } => 1,
            ForeignNode::Dir { entries, .. } => entries.values().map(|n| n.count_files()).sum(),
        }
    }
}

/// A restored foreign file system plus portability warnings.
#[derive(Debug)]
pub struct ForeignRestore {
    /// The root directory.
    pub root: ForeignNode,
    /// Attributes the foreign system could not represent.
    pub warnings: Vec<String>,
    /// Files restored.
    pub files: u64,
    /// Data blocks restored.
    pub data_blocks: u64,
}

/// Restores a dump stream onto a foreign (non-WAFL) file system.
pub fn restore_to_foreign(drive: &mut dyn Media) -> Result<ForeignRestore, DumpError> {
    let head = read_stream_head(drive)?;
    let mut warnings = head.warnings.clone();

    // Build the directory skeleton and remember each dir's path.
    let mut paths: BTreeMap<Ino, String> = BTreeMap::new();
    paths.insert(head.root_ino, String::new());
    let mut order: Vec<Ino> = vec![head.root_ino];
    let mut i = 0;
    while i < order.len() {
        let dir = order[i];
        i += 1;
        if let Some((_, entries)) = head.dirs.get(&dir) {
            for e in entries {
                if head.dirs.contains_key(&e.ino) {
                    let path = format!("{}/{}", paths[&dir], e.name);
                    paths.insert(e.ino, path);
                    order.push(e.ino);
                }
            }
        }
    }

    let (root_attrs, _) = head
        .dirs
        .get(&head.root_ino)
        .cloned()
        .unwrap_or((wafl::types::Attrs::default(), Vec::new()));
    let mut root = ForeignNode::new_dir(root_attrs.perm, root_attrs.uid, root_attrs.gid);

    fn insert_at<'a>(
        root: &'a mut ForeignNode,
        path: &str,
    ) -> &'a mut BTreeMap<String, ForeignNode> {
        let mut node = root;
        for comp in path.split('/').filter(|c| !c.is_empty()) {
            let ForeignNode::Dir { entries, .. } = node else {
                unreachable!("dirs are created before their children")
            };
            node = entries
                .entry(comp.to_string())
                .or_insert_with(|| ForeignNode::new_dir(0o755, 0, 0));
        }
        match node {
            ForeignNode::Dir { entries, .. } => entries,
            ForeignNode::File { .. } => unreachable!("path resolves to a dir"),
        }
    }

    // Create dirs (skipping the root, which exists).
    for ino in &order[1..] {
        let Some((attrs, _)) = head.dirs.get(ino).cloned() else {
            continue;
        };
        if attrs.dos_name.is_some() || attrs.nt_acl.is_some() {
            warnings.push(format!(
                "directory {}: DOS/NT attributes not representable here; dropped",
                paths[ino]
            ));
        }
        let path = paths[ino].clone();
        let Some((parent_path, name)) = path.rsplit_once('/') else {
            continue;
        };
        let entries = insert_at(&mut root, parent_path);
        entries.insert(
            name.to_string(),
            ForeignNode::new_dir(attrs.perm, attrs.uid, attrs.gid),
        );
    }

    // Map file inos to their paths. Hard links flatten to independent
    // copies on the foreign system (with a warning), so every path is
    // remembered.
    let mut file_paths: BTreeMap<Ino, Vec<String>> = BTreeMap::new();
    for (dir, (_, entries)) in &head.dirs {
        for e in entries {
            if !head.dirs.contains_key(&e.ino) && head.dumped.get(e.ino) {
                file_paths
                    .entry(e.ino)
                    .or_default()
                    .push(format!("{}/{}", paths[dir], e.name));
            }
        }
    }
    for (ino, names) in &file_paths {
        if names.len() > 1 {
            warnings.push(format!(
                "inode {ino} has {} hard links; flattened to independent copies",
                names.len()
            ));
        }
    }

    // Stream the data section.
    let mut files = 0u64;
    let mut data_blocks = 0u64;
    let mut current: Option<Ino> = None;
    let mut rec = head.pending.clone();
    loop {
        let record = match rec.take() {
            Some(r) => r,
            None => match next_record(drive, &mut warnings)? {
                Some(r) => r,
                None => break,
            },
        };
        match record {
            DumpRecord::Inode {
                ino, size, attrs, ..
            } => {
                let Some(names) = file_paths.get(&ino) else {
                    warnings.push(format!("file inode {ino} not named by any directory"));
                    current = None;
                    continue;
                };
                if attrs.dos_name.is_some() || attrs.nt_acl.is_some() {
                    warnings.push(format!(
                        "file {}: DOS/NT attributes not representable here; dropped",
                        names[0]
                    ));
                }
                for path in names.clone() {
                    let Some((parent_path, name)) = path.rsplit_once('/') else {
                        continue;
                    };
                    let entries = insert_at(&mut root, parent_path);
                    entries.insert(
                        name.to_string(),
                        ForeignNode::File {
                            size,
                            blocks: BTreeMap::new(),
                            perm: attrs.perm,
                            uid: attrs.uid,
                            gid: attrs.gid,
                            mtime: attrs.mtime,
                        },
                    );
                }
                files += 1;
                current = Some(ino);
            }
            DumpRecord::Data { ino, fbns, blocks } => {
                if current != Some(ino) && !file_paths.contains_key(&ino) {
                    warnings.push(format!("stray data for inode {ino}"));
                    continue;
                }
                for path in file_paths[&ino].clone() {
                    let Some((parent_path, name)) = path.rsplit_once('/') else {
                        continue;
                    };
                    let entries = insert_at(&mut root, parent_path);
                    if let Some(ForeignNode::File { blocks: fb, .. }) = entries.get_mut(name) {
                        for (fbn, block) in fbns.iter().cloned().zip(blocks.iter().cloned()) {
                            fb.insert(fbn, block);
                        }
                    }
                }
                data_blocks += fbns.len() as u64;
            }
            DumpRecord::End { .. } => break,
            other => warnings.push(format!("unexpected record: {other:?}")),
        }
    }

    Ok(ForeignRestore {
        root,
        warnings,
        files,
        data_blocks,
    })
}
