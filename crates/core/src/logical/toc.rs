//! Tape table-of-contents and stream verification.
//!
//! Two operator tools the BSD toolchain provides and the paper leans on:
//!
//! - [`list_contents`] is `restore -t`: list what a dump tape holds
//!   without touching the target file system (the desiccated directory
//!   table is enough — and because directories precede files in the
//!   format, listing reads only the stream head).
//! - [`verify_stream`] is the paper's robustness ritual ("horror stories
//!   abound concerning system administrators attempting to restore ...
//!   only to discover that all the backup tapes made in the last year are
//!   not readable"): a full read pass that cross-checks every record
//!   against the dumped-inode bitmap and the trailer totals.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use simkit::media::Media;
use wafl::types::FileType;
use wafl::types::Ino;

use crate::logical::format::DumpError;
use crate::logical::format::DumpRecord;
use crate::logical::restore::next_record;
use crate::logical::restore::read_stream_head;

/// One listed object on the tape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TocEntry {
    /// Path within the dump (relative to the dump root).
    pub path: String,
    /// Source inode number.
    pub ino: Ino,
    /// File or directory.
    pub ftype: FileType,
}

/// Lists the contents of a dump tape from its directory records alone.
///
/// Entries are returned sorted by path. Files that exist in directory
/// listings but were not dumped (excluded, or unchanged in an
/// incremental) are omitted — the list shows what this tape can restore.
pub fn list_contents(drive: &mut dyn Media) -> Result<Vec<TocEntry>, DumpError> {
    let head = read_stream_head(drive)?;
    let mut out = Vec::new();
    // Walk the directory tree breadth-first building paths.
    let mut queue: Vec<(Ino, String)> = vec![(head.root_ino, String::new())];
    let mut qi = 0;
    while qi < queue.len() {
        let (dir, prefix) = queue[qi].clone();
        qi += 1;
        let Some((_, entries)) = head.dirs.get(&dir) else {
            continue;
        };
        for e in entries {
            let path = format!("{prefix}/{}", e.name);
            if head.dirs.contains_key(&e.ino) {
                out.push(TocEntry {
                    path: path.clone(),
                    ino: e.ino,
                    ftype: FileType::Dir,
                });
                queue.push((e.ino, path));
            } else if head.dumped.get(e.ino) {
                out.push(TocEntry {
                    path,
                    ino: e.ino,
                    ftype: e.kind,
                });
            }
        }
    }
    out.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(out)
}

/// The verdict of a full verification pass.
#[derive(Debug, Default)]
pub struct StreamCheck {
    /// Files the dumped bitmap promises.
    pub files_promised: u64,
    /// File headers actually present and parseable.
    pub files_seen: u64,
    /// Directory records present.
    pub dirs_seen: u64,
    /// Data blocks present.
    pub data_blocks: u64,
    /// Problems found (empty = the tape will restore completely).
    pub problems: Vec<String>,
}

impl StreamCheck {
    /// True when the stream verifies clean.
    pub fn is_clean(&self) -> bool {
        self.problems.is_empty()
    }
}

/// Reads the whole stream, cross-checking structure, the dumped-inode
/// bitmap, per-file block counts, and the trailer totals.
pub fn verify_stream(drive: &mut dyn Media) -> Result<StreamCheck, DumpError> {
    let head = read_stream_head(drive)?;
    let mut out = StreamCheck {
        dirs_seen: head.dirs.len() as u64,
        ..StreamCheck::default()
    };
    let mut warnings = head.warnings.clone();

    // Which inodes the stream promises as files (dumped but not dirs).
    let promised: BTreeSet<Ino> = head
        .dumped
        .iter()
        .filter(|ino| !head.dirs.contains_key(ino))
        .collect();
    out.files_promised = promised.len() as u64;

    // Dirs promised by the bitmap must all have appeared in the head.
    for ino in head.dumped.iter() {
        if head.dirs.contains_key(&ino) {
            continue;
        }
    }

    let mut seen: BTreeMap<Ino, (u64, u64)> = BTreeMap::new(); // ino -> (promised blocks, seen)
    let mut current: Option<Ino> = None;
    let mut trailer: Option<(u64, u64, u64)> = None;
    let mut rec = head.pending.clone();
    loop {
        let record = match rec.take() {
            Some(r) => r,
            None => match next_record(drive, &mut warnings)? {
                Some(r) => r,
                None => break,
            },
        };
        match record {
            DumpRecord::Inode {
                ino, nblocks, size, ..
            } => {
                if !promised.contains(&ino) {
                    out.problems.push(format!(
                        "file header for inode {ino} not in the dumped bitmap"
                    ));
                }
                if seen.insert(ino, (nblocks, 0)).is_some() {
                    out.problems
                        .push(format!("duplicate header for inode {ino}"));
                }
                if nblocks * 4096 > size + 4096 {
                    out.problems.push(format!(
                        "inode {ino}: {nblocks} blocks exceed declared size {size}"
                    ));
                }
                out.files_seen += 1;
                current = Some(ino);
            }
            DumpRecord::Data { ino, fbns, blocks } => {
                if current != Some(ino) {
                    out.problems
                        .push(format!("data for inode {ino} outside its header section"));
                }
                if fbns.len() != blocks.len() {
                    out.problems
                        .push(format!("inode {ino}: fbn/payload count mismatch"));
                }
                if let Some((_, seen_blocks)) = seen.get_mut(&ino) {
                    *seen_blocks += blocks.len() as u64;
                }
                out.data_blocks += blocks.len() as u64;
            }
            DumpRecord::End {
                files,
                dirs,
                data_blocks,
            } => {
                trailer = Some((files, dirs, data_blocks));
            }
            other => {
                out.problems
                    .push(format!("unexpected record in data section: {other:?}"));
            }
        }
    }
    out.problems.extend(warnings);

    // Every promised file must have appeared with all of its blocks.
    for ino in &promised {
        match seen.get(ino) {
            None => out
                .problems
                .push(format!("inode {ino} promised but never on tape")),
            Some((want, got)) if want != got => out.problems.push(format!(
                "inode {ino}: header promises {want} blocks, stream carries {got}"
            )),
            _ => {}
        }
    }
    // Trailer cross-check.
    match trailer {
        None => out.problems.push("stream has no trailer".into()),
        Some((files, dirs, data_blocks)) => {
            if files != out.files_seen {
                out.problems
                    .push(format!("trailer files {files} != seen {}", out.files_seen));
            }
            if dirs != out.dirs_seen {
                out.problems
                    .push(format!("trailer dirs {dirs} != seen {}", out.dirs_seen));
            }
            if data_blocks != out.data_blocks {
                out.problems.push(format!(
                    "trailer blocks {data_blocks} != seen {}",
                    out.data_blocks
                ));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::catalog::DumpCatalog;
    use crate::logical::dump::dump;
    use crate::logical::dump::DumpOptions;
    use blockdev::Block;
    use blockdev::DiskPerf;
    use raid::Volume;
    use raid::VolumeGeometry;
    use tape::TapeDrive;
    use tape::TapePerf;
    use wafl::types::Attrs;
    use wafl::types::WaflConfig;
    use wafl::types::INO_ROOT;
    use wafl::Wafl;

    fn dumped_tape() -> (Wafl, TapeDrive) {
        let vol = Volume::new(VolumeGeometry::uniform(1, 4, 4096, DiskPerf::ideal()));
        let mut fs = Wafl::format(vol, WaflConfig::default()).unwrap();
        let d = fs
            .create(INO_ROOT, "proj", FileType::Dir, Attrs::default())
            .unwrap();
        for i in 0..5u64 {
            let f = fs
                .create(d, &format!("src{i}.rs"), FileType::File, Attrs::default())
                .unwrap();
            fs.write_fbn(f, 0, Block::Synthetic(i)).unwrap();
        }
        let mut tape = TapeDrive::new(TapePerf::ideal(), 1 << 30);
        let mut catalog = DumpCatalog::new();
        dump(&mut fs, &mut tape, &mut catalog, &DumpOptions::default()).unwrap();
        (fs, tape)
    }

    #[test]
    fn toc_lists_every_path() {
        let (_fs, mut tape) = dumped_tape();
        let toc = list_contents(&mut tape).unwrap();
        assert_eq!(toc.len(), 6, "1 dir + 5 files: {toc:?}");
        assert!(toc
            .iter()
            .any(|e| e.path == "/proj" && e.ftype == FileType::Dir));
        assert!(toc
            .iter()
            .any(|e| e.path == "/proj/src3.rs" && e.ftype == FileType::File));
        // Sorted by path.
        let mut sorted = toc.clone();
        sorted.sort_by(|a, b| a.path.cmp(&b.path));
        assert_eq!(toc, sorted);
    }

    #[test]
    fn clean_stream_verifies() {
        let (_fs, mut tape) = dumped_tape();
        let v = verify_stream(&mut tape).unwrap();
        assert!(v.is_clean(), "problems: {:?}", v.problems);
        assert_eq!(v.files_promised, 5);
        assert_eq!(v.files_seen, 5);
        assert_eq!(v.data_blocks, 5);
        assert!(v.dirs_seen >= 2);
    }

    #[test]
    fn verification_catches_corruption() {
        let (_fs, mut tape) = dumped_tape();
        // Damage a record in the data section.
        let n = tape.total_records();
        assert!(tape.corrupt_record(n - 3));
        let v = verify_stream(&mut tape).unwrap();
        assert!(!v.is_clean(), "damage must be detected");
    }

    #[test]
    fn verification_catches_truncated_streams() {
        let (mut fs, _) = dumped_tape();
        // Build a stream then "lose" the tail by dumping to a tape whose
        // final records we damage (simulating an unfinished dump: corrupt
        // the trailer).
        let mut tape = TapeDrive::new(TapePerf::ideal(), 1 << 30);
        let mut catalog = DumpCatalog::new();
        dump(&mut fs, &mut tape, &mut catalog, &DumpOptions::default()).unwrap();
        let n = tape.total_records();
        assert!(tape.corrupt_record(n - 1)); // the TS_END
        let v = verify_stream(&mut tape).unwrap();
        assert!(
            v.problems.iter().any(|p| p.contains("no trailer")),
            "{:?}",
            v.problems
        );
    }
}
