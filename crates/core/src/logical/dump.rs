//! The four-phase dump (paper §3).
//!
//! Phase I walks the tree marking inodes in use and inodes to be dumped
//! (changed since the base for incrementals). Phase II marks the
//! directories between the dump root and the selected files — these are
//! needed so restore can map names to inode numbers. Phases III and IV
//! write directories and files, each in ascending inode order.
//!
//! The dump reads everything through a snapshot view, so it presents "a
//! completely consistent view of the file system" without taking it
//! offline, and its disk reads are real: on a mature, fragmented volume the
//! inode-order file pass turns into scattered reads — the effect the
//! paper blames for logical dump's poor scaling.

use nvram::NvScratch;
use simkit::crash::CrashPoint;
use simkit::media::Media;
use wafl::ondisk::DiskInode;
use wafl::types::FileType;
use wafl::types::Ino;
use wafl::SnapView;
use wafl::Wafl;

use crate::crashpoint::power_fire;
use crate::logical::catalog::DumpCatalog;
use crate::logical::format::DumpError;
use crate::logical::format::DumpRecord;
use crate::logical::format::InoMap;
use crate::logical::format::WhichMap;
use crate::logical::format::DATA_RUN;
use crate::report::Profiler;

/// Dump parameters.
#[derive(Debug, Clone)]
pub struct DumpOptions {
    /// Incremental level 0–9 (0 = full).
    pub level: u8,
    /// Subtree to dump ("/" for the whole volume; a qtree path for the
    /// paper's parallel experiments).
    pub subtree: String,
    /// Volume name recorded in the stream header.
    pub volume_name: String,
    /// Keep the dump snapshot afterwards instead of deleting it.
    pub keep_snapshot: bool,
    /// File names excluded from the dump (exact match) — the "filters"
    /// benefit of logical backup.
    pub exclude_names: Vec<String>,
    /// File name suffixes excluded from the dump (e.g. ".o").
    pub exclude_suffixes: Vec<String>,
    /// Blocks per read-ahead chain in phase IV (the dump's own read-ahead
    /// policy; default [`DATA_RUN`] = 64 KiB chains). The readahead
    /// ablation benchmark varies this.
    pub read_chain: usize,
    /// Where the stream lands (tape drive or network link). The dump
    /// itself writes whatever `&mut dyn Media` it is handed; this names
    /// the medium the orchestration layer should open for it.
    pub target: crate::target::Target,
}

impl Default for DumpOptions {
    fn default() -> Self {
        DumpOptions {
            level: 0,
            subtree: "/".into(),
            volume_name: "vol".into(),
            keep_snapshot: false,
            exclude_names: Vec::new(),
            exclude_suffixes: Vec::new(),
            read_chain: DATA_RUN,
            target: crate::target::Target::default(),
        }
    }
}

impl DumpOptions {
    /// Starts a builder over the defaults:
    /// `DumpOptions::builder().subtree("/proj").level(1).build()`.
    pub fn builder() -> DumpOptionsBuilder {
        DumpOptionsBuilder {
            opts: DumpOptions::default(),
        }
    }
}

/// Fluent constructor for [`DumpOptions`].
#[derive(Debug, Clone, Default)]
pub struct DumpOptionsBuilder {
    opts: DumpOptions,
}

impl DumpOptionsBuilder {
    /// Incremental level 0–9 (0 = full).
    pub fn level(mut self, level: u8) -> Self {
        self.opts.level = level;
        self
    }

    /// Subtree to dump ("/" for the whole volume).
    pub fn subtree(mut self, subtree: impl Into<String>) -> Self {
        self.opts.subtree = subtree.into();
        self
    }

    /// Volume name recorded in the stream header.
    pub fn volume_name(mut self, name: impl Into<String>) -> Self {
        self.opts.volume_name = name.into();
        self
    }

    /// Keep the dump snapshot afterwards.
    pub fn keep_snapshot(mut self, keep: bool) -> Self {
        self.opts.keep_snapshot = keep;
        self
    }

    /// Excludes a file name (exact match).
    pub fn exclude_name(mut self, name: impl Into<String>) -> Self {
        self.opts.exclude_names.push(name.into());
        self
    }

    /// Excludes a file-name suffix (e.g. ".o").
    pub fn exclude_suffix(mut self, suffix: impl Into<String>) -> Self {
        self.opts.exclude_suffixes.push(suffix.into());
        self
    }

    /// Blocks per phase-IV read-ahead chain.
    pub fn read_chain(mut self, blocks: usize) -> Self {
        self.opts.read_chain = blocks;
        self
    }

    /// Where the stream lands: `Target::Tape { .. }` or
    /// `Target::Net(link)`.
    pub fn target(mut self, target: crate::target::Target) -> Self {
        self.opts.target = target;
        self
    }

    /// Finishes the build.
    pub fn build(self) -> DumpOptions {
        self.opts
    }
}

/// What a dump produced.
#[derive(Debug)]
pub struct DumpOutcome {
    /// Per-stage resource profiles.
    pub profiler: Profiler,
    /// Files written to the stream.
    pub files: u64,
    /// Directories written to the stream.
    pub dirs: u64,
    /// Data blocks written.
    pub data_blocks: u64,
    /// Total bytes that went to tape.
    pub tape_bytes: u64,
    /// The dump date recorded in the catalog.
    pub dump_date: u64,
    /// The level dumped.
    pub level: u8,
    /// Name of the snapshot used (kept only with
    /// [`DumpOptions::keep_snapshot`]).
    pub snapshot_name: String,
}

/// Phase I/II output.
struct MapState {
    used: InoMap,
    dump: InoMap,
    dirs: Vec<Ino>,
    files: Vec<Ino>,
    /// Kind of every used inode (for the per-entry kind bytes in TS_DIR).
    kinds: std::collections::BTreeMap<Ino, FileType>,
}

/// Phases I and II, the BSD way.
///
/// Phase I is a *sequential scan of the inode file* — not a tree walk —
/// marking every in-use inode and every file changed since the base; this
/// is what keeps mapping cheap on a fragmented volume (the inode file
/// reads are contiguous). Phase II reads only the directories: their
/// entry blocks give the parent/child graph, from which subtree
/// membership, exclusions, and the "directories between the root of the
/// dump and the selected files" are computed without touching any file.
fn map_phase(
    view: &mut SnapView<'_>,
    root_ino: Ino,
    base_date: u64,
    level: u8,
    opts: &DumpOptions,
) -> Result<MapState, DumpError> {
    let excluded = |name: &str| {
        opts.exclude_names.iter().any(|n| n == name)
            || opts
                .exclude_suffixes
                .iter()
                .any(|s| name.ends_with(s.as_str()))
    };

    // Phase I: sequential inode-file scan.
    let max_ino = view.max_ino();
    let mut used = InoMap::new(max_ino);
    let mut changed = InoMap::new(max_ino);
    let mut kinds: std::collections::BTreeMap<Ino, FileType> = std::collections::BTreeMap::new();
    let mut all_dirs: Vec<(Ino, DiskInode)> = Vec::new();
    for ino in 2..max_ino {
        let Some(di) = view.read_inode(ino)? else {
            continue;
        };
        used.set(ino);
        let is_changed = level == 0 || di.attrs.mtime > base_date || di.attrs.ctime > base_date;
        if is_changed {
            changed.set(ino);
        }
        match di.ftype {
            Some(t @ (FileType::File | FileType::Symlink)) => {
                kinds.insert(ino, t);
            }
            Some(FileType::Dir) => {
                kinds.insert(ino, FileType::Dir);
                all_dirs.push((ino, di));
            }
            None => {}
        }
    }

    // Phase II: read every directory's entries once; build the graph.
    use std::collections::BTreeMap;
    use std::collections::BTreeSet;
    let dir_inos: BTreeSet<Ino> = all_dirs.iter().map(|(i, _)| *i).collect();
    // dir -> (child name, child ino) with exclusions applied.
    let mut entries_of: BTreeMap<Ino, Vec<(String, Ino)>> = BTreeMap::new();
    for (ino, di) in &all_dirs {
        let entries: Vec<(String, Ino)> = view
            .read_dir(di)?
            .into_iter()
            .filter(|(name, _)| !excluded(name))
            .collect();
        entries_of.insert(*ino, entries);
    }

    // Subtree membership: BFS over the in-memory graph from the dump root.
    let mut member_dirs: Vec<Ino> = Vec::new();
    let mut member_files: Vec<Ino> = Vec::new();
    let mut queue = vec![root_ino];
    let mut seen: BTreeSet<Ino> = queue.iter().copied().collect();
    while let Some(dir) = queue.pop() {
        member_dirs.push(dir);
        for (_, child) in entries_of.get(&dir).map(|v| v.as_slice()).unwrap_or(&[]) {
            if !seen.insert(*child) {
                continue;
            }
            if dir_inos.contains(child) {
                queue.push(*child);
            } else if used.get(*child) {
                member_files.push(*child);
            }
        }
    }

    // Selection: changed member files; a member dir is dumped when it is
    // on the path to any dumped entry (or itself changed).
    let mut state = MapState {
        used: InoMap::new(max_ino),
        dump: InoMap::new(max_ino),
        dirs: Vec::new(),
        files: Vec::new(),
        kinds,
    };
    for &ino in member_dirs.iter().chain(member_files.iter()) {
        state.used.set(ino);
    }
    for &f in &member_files {
        if changed.get(f) {
            state.dump.set(f);
            state.files.push(f);
        }
    }
    // Mark directories bottom-up: process in reverse BFS order so children
    // settle before parents.
    let mut dumped_dirs: BTreeSet<Ino> = BTreeSet::new();
    for &dir in member_dirs.iter().rev() {
        let mut any = changed.get(dir);
        for (_, child) in entries_of.get(&dir).map(|v| v.as_slice()).unwrap_or(&[]) {
            if state.dump.get(*child) || dumped_dirs.contains(child) {
                any = true;
            }
        }
        if any || dir == root_ino {
            dumped_dirs.insert(dir);
        }
    }
    // Level 0 always carries the entire subtree's directory skeleton.
    for &dir in &member_dirs {
        if level == 0 || dumped_dirs.contains(&dir) {
            state.dump.set(dir);
            state.dirs.push(dir);
        }
    }
    state.dirs.sort_unstable();
    state.files.sort_unstable();
    Ok(state)
}

/// Restart state for an interrupted logical dump, as stashed in NVRAM.
///
/// Logical dump's restart is deliberately *coarser* than image dump's:
/// the checkpoint records only a per-phase inode watermark, and a resume
/// must re-run the whole mapping pass (phases I & II) against the still
/// existing dump snapshot before it can skip anything — the
/// tree-structured stream has no cheap positional state the way the flat
/// block list does. The re-mapping cost shows up in the resumed run's
/// "mapping files and directories" stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogicalCheckpoint {
    /// The phase in progress when the checkpoint was taken: 3 = dumping
    /// directories, 4 = dumping files.
    pub phase: u8,
    /// Highest inode fully written in that phase (0 = none yet).
    pub last_ino: Ino,
    /// Complete records on the media through the watermark.
    pub records: u64,
    /// Data blocks on the media through the watermark.
    pub data_blocks: u64,
    /// Name of the dump snapshot (must still exist to resume).
    pub snapshot: String,
    /// The dump date the stream header carries.
    pub dump_date: u64,
    /// The incremental base date the stream header carries.
    pub base_date: u64,
}

impl LogicalCheckpoint {
    /// Serializes for an [`NvScratch`] slot.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(39 + self.snapshot.len());
        out.push(self.phase);
        out.extend_from_slice(&self.last_ino.to_le_bytes());
        out.extend_from_slice(&self.records.to_le_bytes());
        out.extend_from_slice(&self.data_blocks.to_le_bytes());
        out.extend_from_slice(&self.dump_date.to_le_bytes());
        out.extend_from_slice(&self.base_date.to_le_bytes());
        out.extend_from_slice(&(self.snapshot.len() as u16).to_le_bytes());
        out.extend_from_slice(self.snapshot.as_bytes());
        out
    }

    /// Deserializes a scratch slot; `None` on any structural damage.
    pub fn from_bytes(bytes: &[u8]) -> Option<LogicalCheckpoint> {
        let fixed: &[u8; 39] = bytes.get(..39)?.try_into().ok()?;
        let name_len = u16::from_le_bytes([fixed[37], fixed[38]]) as usize;
        let name = bytes.get(39..39 + name_len)?;
        let u64_at = |off: usize| -> Option<u64> {
            Some(u64::from_le_bytes(
                fixed.get(off..off + 8)?.try_into().ok()?,
            ))
        };
        Some(LogicalCheckpoint {
            phase: fixed[0],
            last_ino: u32::from_le_bytes(fixed[1..5].try_into().ok()?),
            records: u64_at(5)?,
            data_blocks: u64_at(13)?,
            dump_date: u64_at(21)?,
            base_date: u64_at(29)?,
            snapshot: String::from_utf8(name.to_vec()).ok()?,
        })
    }
}

/// Default checkpoint cadence for logical dumps: every 16 records.
pub const LOGICAL_CHECKPOINT_EVERY: u64 = 16;

/// A logical dump that can survive interruption.
///
/// [`dump`] delegates here with checkpointing off, so the plain path is
/// unchanged; harnesses that want restartability construct this directly
/// with a checkpoint interval and a persistent [`NvScratch`]. On error the
/// dump snapshot is *kept* (the checkpoint needs it); a successful run
/// retires both snapshot (per [`DumpOptions::keep_snapshot`]) and
/// checkpoint.
#[derive(Debug, Clone)]
pub struct RestartableLogicalDump {
    opts: DumpOptions,
    every: u64,
}

impl RestartableLogicalDump {
    /// A restartable dump with the given options, checkpointing every
    /// [`LOGICAL_CHECKPOINT_EVERY`] records.
    pub fn new(opts: DumpOptions) -> RestartableLogicalDump {
        RestartableLogicalDump {
            opts,
            every: LOGICAL_CHECKPOINT_EVERY,
        }
    }

    /// Changes the checkpoint cadence (`u64::MAX` disables checkpointing).
    pub fn checkpoint_every(mut self, records: u64) -> RestartableLogicalDump {
        self.every = records.max(1);
        self
    }

    /// The scratch slot key this dump checkpoints under.
    pub fn scratch_key(&self) -> String {
        format!("ckpt.logical.{}", self.opts.subtree)
    }

    /// Runs the dump, resuming from `scratch` if it holds a checkpoint
    /// whose dump snapshot still exists.
    pub fn run(
        &self,
        fs: &mut Wafl,
        media: &mut dyn Media,
        catalog: &mut DumpCatalog,
        scratch: &mut NvScratch,
    ) -> Result<DumpOutcome, DumpError> {
        let opts = &self.opts;
        let key = self.scratch_key();
        // Crash-point shim: power loss surfaces as the dump's own error so
        // the harness reboots and resumes instead of retrying the medium.
        let interrupted = |point: CrashPoint| -> Result<(), DumpError> {
            if power_fire(point) {
                return Err(DumpError::Interrupted { point });
            }
            Ok(())
        };
        let resume = scratch
            .load(&key)
            .and_then(LogicalCheckpoint::from_bytes)
            .filter(|c| fs.snapshot_by_name(&c.snapshot).is_some());
        let checkpoints_on = self.every != u64::MAX;

        let profiler = Profiler::new();
        let meter = fs.meter();
        let costs = *fs.costs();
        let op_span = profiler.stage("logical dump", fs);

        // Stage: create the snapshot the dump reads from — or, on resume,
        // re-anchor to the one the interrupted attempt left behind.
        let (snap_id, snapshot_name, dump_date, base_date) = match &resume {
            Some(c) => {
                let snap_id = fs
                    .snapshot_by_name(&c.snapshot)
                    .map(|e| e.id)
                    .ok_or_else(|| DumpError::BadStream {
                        reason: format!("dump snapshot {} vanished before resume", c.snapshot),
                    })?;
                obs::counter("backup.resumes").inc();
                (snap_id, c.snapshot.clone(), c.dump_date, c.base_date)
            }
            None => {
                let base_date = if opts.level == 0 {
                    0
                } else {
                    catalog
                        .base_for(&opts.subtree, opts.level)
                        .map(|e| e.date)
                        .unwrap_or(0)
                };
                let _span = profiler.stage("creating snapshot", fs);
                let snapshot_name = format!("dump.{}", fs.now() + 1);
                let snap_id = fs.snapshot_create(&snapshot_name)?;
                (snap_id, snapshot_name, fs.now(), base_date)
            }
        };

        // Phases I & II: map files and directories. A resume re-runs this
        // in full — the coarse part of logical restartability.
        let (state, root_ino, max_ino) = {
            let mut span = profiler.stage("mapping files and directories", fs);
            let (state, root_ino, max_ino) = {
                let mut view = fs.snap_view(snap_id)?;
                let root_ino = view.namei(&opts.subtree)?;
                view.read_inode(root_ino)?
                    .ok_or_else(|| DumpError::NotInDump {
                        path: opts.subtree.clone(),
                    })?;
                let max_ino = view.max_ino();
                let state = map_phase(&mut view, root_ino, base_date, opts.level, opts)?;
                (state, root_ino, max_ino)
            };
            meter.charge_cpu(costs.dump_inode * (state.used.count() as f64));
            span.counts(
                state.files.len() as u64,
                state.dirs.len() as u64,
                state.used.count(),
            );
            (state, root_ino, max_ino)
        };

        // Watermarks derived from the checkpoint: directories/files at or
        // below these inodes are already on the media.
        let (dirs_done_through, files_done_through, mut data_blocks) = match &resume {
            Some(c) => {
                media.truncate_records(c.records);
                match c.phase {
                    4 => (Ino::MAX, c.last_ino, c.data_blocks),
                    _ => (c.last_ino, 0, 0),
                }
            }
            None => (0, 0, 0u64),
        };
        let mut records_since_ckpt = 0u64;

        // Phase III: header, maps, directories (in inode order).
        let mut dir_span = profiler.stage("dumping directories", fs);
        if resume.is_none() {
            media.write_record(
                DumpRecord::Tape {
                    level: opts.level,
                    dump_date,
                    base_date,
                    volume: opts.volume_name.clone(),
                    root_ino,
                    max_ino,
                }
                .to_record(),
            )?;
            media.write_record(
                DumpRecord::Bits {
                    which: WhichMap::Used,
                    bits: state.used.as_bytes().to_vec(),
                }
                .to_record(),
            )?;
            media.write_record(
                DumpRecord::Bits {
                    which: WhichMap::Dumped,
                    bits: state.dump.as_bytes().to_vec(),
                }
                .to_record(),
            )?;
            if checkpoints_on {
                interrupted(CrashPoint::DumpCheckpoint)?;
                // The head is down; from here a restart can be surgical.
                let _ = scratch.store(
                    &key,
                    LogicalCheckpoint {
                        phase: 3,
                        last_ino: 0,
                        records: media.total_records(),
                        data_blocks: 0,
                        snapshot: snapshot_name.clone(),
                        dump_date,
                        base_date,
                    }
                    .to_bytes(),
                );
            }
        }
        {
            let mut view = fs.snap_view(snap_id)?;
            for &dir_ino in &state.dirs {
                if dir_ino <= dirs_done_through {
                    continue;
                }
                let di = view
                    .read_inode(dir_ino)?
                    .ok_or_else(|| DumpError::BadStream {
                        reason: format!("mapped dir {dir_ino} vanished from snapshot"),
                    })?;
                let entries = view
                    .read_dir(&di)?
                    .into_iter()
                    .map(|(name, child)| crate::logical::format::DirEntry {
                        name,
                        kind: state.kinds.get(&child).copied().unwrap_or(FileType::File),
                        ino: child,
                    })
                    .collect();
                meter.charge_cpu(costs.dump_dir);
                interrupted(CrashPoint::DumpRecord)?;
                media.write_record(
                    DumpRecord::Dir {
                        ino: dir_ino,
                        attrs: di.attrs,
                        entries,
                    }
                    .to_record(),
                )?;
                records_since_ckpt += 1;
                if checkpoints_on && records_since_ckpt >= self.every {
                    records_since_ckpt = 0;
                    interrupted(CrashPoint::DumpCheckpoint)?;
                    let _ = scratch.store(
                        &key,
                        LogicalCheckpoint {
                            phase: 3,
                            last_ino: dir_ino,
                            records: media.total_records(),
                            data_blocks: 0,
                            snapshot: snapshot_name.clone(),
                            dump_date,
                            base_date,
                        }
                        .to_bytes(),
                    );
                }
            }
        }
        dir_span.counts(0, state.dirs.len() as u64, 0);
        drop(dir_span);

        // Phase IV: files, in inode order, with dump's own read-ahead
        // (`read_chain`-block chains, 64 KiB by default). Checkpoints land
        // only on file boundaries, so a resumed stream never carries a
        // half-written file.
        let mut file_span = profiler.stage("dumping files", fs);
        {
            let mut view = fs.snap_view(snap_id)?;
            for &file_ino in &state.files {
                if file_ino <= files_done_through {
                    continue;
                }
                let di = view
                    .read_inode(file_ino)?
                    .ok_or_else(|| DumpError::BadStream {
                        reason: format!("mapped file {file_ino} vanished from snapshot"),
                    })?;
                let slots = view.file_slots(&di)?;
                let present: Vec<u64> = (0..slots.len() as u64)
                    .filter(|&fbn| slots[fbn as usize] != 0)
                    .collect();
                meter.charge_cpu(costs.dump_inode);
                interrupted(CrashPoint::DumpRecord)?;
                media.write_record(
                    DumpRecord::Inode {
                        ino: file_ino,
                        size: di.root.size,
                        nblocks: present.len() as u64,
                        kind: di.ftype.unwrap_or(FileType::File),
                        attrs: di.attrs,
                    }
                    .to_record(),
                )?;
                records_since_ckpt += 1;
                for run in present.chunks(opts.read_chain.max(1)) {
                    let mut blocks = Vec::with_capacity(run.len());
                    for &fbn in run {
                        blocks.push(view.read_file_block(&slots, fbn)?);
                    }
                    meter.charge_cpu(costs.dump_format_block * run.len() as f64);
                    data_blocks += run.len() as u64;
                    interrupted(CrashPoint::DumpRecord)?;
                    media.write_record(
                        DumpRecord::Data {
                            ino: file_ino,
                            fbns: run.to_vec(),
                            blocks,
                        }
                        .to_record(),
                    )?;
                    records_since_ckpt += 1;
                }
                if checkpoints_on && records_since_ckpt >= self.every {
                    records_since_ckpt = 0;
                    interrupted(CrashPoint::DumpCheckpoint)?;
                    let _ = scratch.store(
                        &key,
                        LogicalCheckpoint {
                            phase: 4,
                            last_ino: file_ino,
                            records: media.total_records(),
                            data_blocks,
                            snapshot: snapshot_name.clone(),
                            dump_date,
                            base_date,
                        }
                        .to_bytes(),
                    );
                }
            }
        }
        media.write_record(
            DumpRecord::End {
                files: state.files.len() as u64,
                dirs: state.dirs.len() as u64,
                data_blocks,
            }
            .to_record(),
        )?;
        file_span.counts(state.files.len() as u64, 0, data_blocks);
        drop(file_span);

        // Stage: delete the snapshot (only a *complete* dump retires it).
        if !opts.keep_snapshot {
            let _span = profiler.stage("deleting snapshot", fs);
            fs.snapshot_delete(snap_id)?;
        }
        scratch.clear(&key);

        catalog.record(&opts.subtree, opts.level, dump_date);
        drop(op_span);
        let tape_bytes = profiler.total_tape_bytes();
        Ok(DumpOutcome {
            profiler,
            files: state.files.len() as u64,
            dirs: state.dirs.len() as u64,
            data_blocks,
            tape_bytes,
            dump_date,
            level: opts.level,
            snapshot_name,
        })
    }
}

/// Runs a dump of `opts.subtree` at `opts.level` to `media`, recording it
/// in `catalog`.
///
/// Prefer [`crate::engine::BackupEngine`] (via [`crate::engine::LogicalEngine`])
/// for new callers; this free function remains as the low-level entry point
/// the engine delegates to. For a dump that survives interruption, use
/// [`RestartableLogicalDump`] with a persistent [`NvScratch`].
pub fn dump(
    fs: &mut Wafl,
    media: &mut dyn Media,
    catalog: &mut DumpCatalog,
    opts: &DumpOptions,
) -> Result<DumpOutcome, DumpError> {
    let mut scratch = NvScratch::new();
    RestartableLogicalDump::new(opts.clone())
        .checkpoint_every(u64::MAX)
        .run(fs, media, catalog, &mut scratch)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logical_checkpoint_round_trips() {
        let c = LogicalCheckpoint {
            phase: 4,
            last_ino: 77,
            records: 123,
            data_blocks: 456,
            snapshot: "dump.9".into(),
            dump_date: 9,
            base_date: 2,
        };
        assert_eq!(
            LogicalCheckpoint::from_bytes(&c.to_bytes()),
            Some(c.clone())
        );
        assert_eq!(LogicalCheckpoint::from_bytes(&[]), None);
        assert_eq!(LogicalCheckpoint::from_bytes(&c.to_bytes()[..20]), None);
    }
}
