//! Rsync-style logical replication: the file-level counterpart of
//! physical mirroring (`crate::physical::mirror`).
//!
//! Where SnapMirror ships the snapshot bit-plane difference without
//! looking at files, the logical path does what rsync does: walk both
//! trees, compare, and ship only what differs. The comparison reads
//! both sides (that is the cost of not having bit planes — the paper's
//! §6 point that physical incrementals are "trivial to compute" while
//! logical ones must discover changes); the shipped payload then
//! travels the channel as ordinary dump-format records, so a network
//! link meters exactly the delta bytes:
//!
//! - files are compared block-by-block and only *differing blocks* are
//!   shipped (`Inode` header + `Data` runs with just those fbns);
//! - attribute-only changes ship a bare `Inode` header;
//! - directory structure, symlink targets, and deletions are
//!   reconciled directly as control traffic (rsync's file-list
//!   exchange), not charged to the data channel.

use std::collections::BTreeMap;

use simkit::media::Media;
use wafl::types::Attrs;
use wafl::types::FileType;
use wafl::types::Ino;
use wafl::Wafl;

use crate::logical::format::DumpError;
use crate::logical::format::DumpRecord;
use crate::logical::format::DATA_RUN;
use crate::logical::restore::next_record;
use crate::logical::restore::remove_recursive;

/// What one logical sync moved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LogicalSyncStats {
    /// Files whose header (and possibly data) crossed the channel.
    pub files_sent: u64,
    /// Data blocks shipped (only the differing ones).
    pub blocks_sent: u64,
    /// Bytes appended to the channel (payload + framing).
    pub bytes_sent: u64,
    /// Target entries deleted because the source no longer has them.
    pub deleted: u64,
    /// Files examined and found identical (nothing shipped).
    pub unchanged: u64,
}

/// One changed file scheduled for transfer.
struct SendItem {
    src_ino: Ino,
    dst_ino: Ino,
    size: u64,
    attrs: Attrs,
    /// Differing file block numbers to ship (empty = header-only
    /// attribute refresh).
    fbns: Vec<u64>,
}

/// Non-time attribute fields the dump format carries (times advance on
/// every operation and differ between independent file systems, so they
/// would defeat the comparison; rsync ignores them in checksum mode
/// too).
fn attrs_match(a: &Attrs, b: &Attrs) -> bool {
    a.perm == b.perm
        && a.uid == b.uid
        && a.gid == b.gid
        && a.dos_attrs == b.dos_attrs
        && a.dos_name == b.dos_name
        && a.dos_time == b.dos_time
        && a.nt_acl == b.nt_acl
}

/// Synchronizes `dst`'s tree to match `src`'s, shipping file data
/// through `channel`. After it returns, `verify::compare_trees` (modulo
/// timestamps) finds no differences. Any records from a previous
/// transfer are truncated away first.
pub fn logical_sync(
    src: &mut Wafl,
    dst: &mut Wafl,
    channel: &mut dyn Media,
) -> Result<LogicalSyncStats, DumpError> {
    let mut stats = LogicalSyncStats::default();
    channel.truncate_records(0);

    // ---- Comparison walk: reconcile structure, collect the delta.
    let mut plan: Vec<SendItem> = Vec::new();
    let mut ino_map: BTreeMap<Ino, Ino> = BTreeMap::new();
    let src_root = src.namei("/")?;
    let dst_root = dst.namei("/")?;
    ino_map.insert(src_root, dst_root);
    let mut stack: Vec<(Ino, Ino)> = vec![(src_root, dst_root)];
    while let Some((src_dir, dst_dir)) = stack.pop() {
        let dir_attrs = src.stat(src_dir)?.attrs;
        if !attrs_match(&dir_attrs, &dst.stat(dst_dir)?.attrs) {
            dst.set_attrs(dst_dir, dir_attrs)?;
        }
        let mut entries = src.readdir(src_dir)?;
        entries.sort_by(|(a, _), (b, _)| a.cmp(b));
        // Deletions first: names the source no longer has.
        for (name, _) in dst.readdir(dst_dir)? {
            if !entries.iter().any(|(n, _)| *n == name) {
                remove_recursive(dst, dst_dir, &name)?;
                stats.deleted += 1;
            }
        }
        for (name, src_child) in entries {
            let st = src.stat(src_child)?;
            // A source inode seen before is another name for the same
            // file: make the target share too.
            if st.ftype != FileType::Dir {
                if let Some(&mapped) = ino_map.get(&src_child) {
                    match dst.lookup(dst_dir, &name) {
                        Ok(existing) if existing == mapped => {}
                        Ok(_) => {
                            dst.remove(dst_dir, &name)?;
                            dst.link(dst_dir, &name, mapped)?;
                        }
                        Err(_) => dst.link(dst_dir, &name, mapped)?,
                    }
                    continue;
                }
            }
            // Type conflicts: replace whatever the target has.
            let existing = match dst.lookup(dst_dir, &name) {
                Ok(ino) => {
                    if dst.stat(ino)?.ftype != st.ftype {
                        remove_recursive(dst, dst_dir, &name)?;
                        None
                    } else {
                        Some(ino)
                    }
                }
                Err(_) => None,
            };
            match st.ftype {
                FileType::Dir => {
                    let dst_child = match existing {
                        Some(ino) => ino,
                        None => dst.create(dst_dir, &name, FileType::Dir, st.attrs.clone())?,
                    };
                    stack.push((src_child, dst_child));
                }
                FileType::Symlink => {
                    let target = src.readlink(src_child)?;
                    let same = match existing {
                        Some(ino) => {
                            dst.readlink(ino)? == target
                                && attrs_match(&st.attrs, &dst.stat(ino)?.attrs)
                        }
                        None => false,
                    };
                    if same {
                        stats.unchanged += 1;
                    } else {
                        if existing.is_some() {
                            dst.remove(dst_dir, &name)?;
                        }
                        let ino = dst.create_symlink(dst_dir, &name, &target, st.attrs.clone())?;
                        ino_map.insert(src_child, ino);
                        stats.files_sent += 1;
                    }
                }
                FileType::File => {
                    let nblocks = st.size.div_ceil(blockdev::BLOCK_SIZE as u64);
                    let (dst_ino, fbns, changed) = match existing {
                        Some(ino) => {
                            // The rsync checksum pass: find differing
                            // blocks (the target may also be longer).
                            let dst_size = dst.stat(ino)?.size;
                            let span = nblocks.max(dst_size.div_ceil(blockdev::BLOCK_SIZE as u64));
                            let mut fbns = Vec::new();
                            for fbn in 0..span {
                                let sb = src.read_fbn(src_child, fbn)?;
                                if !sb.same_content(&dst.read_fbn(ino, fbn)?) {
                                    fbns.push(fbn);
                                }
                            }
                            let changed = !fbns.is_empty()
                                || st.size != dst_size
                                || !attrs_match(&st.attrs, &dst.stat(ino)?.attrs);
                            (ino, fbns, changed)
                        }
                        None => {
                            let ino =
                                dst.create(dst_dir, &name, FileType::File, st.attrs.clone())?;
                            (ino, (0..nblocks).collect(), true)
                        }
                    };
                    ino_map.insert(src_child, dst_ino);
                    if changed {
                        plan.push(SendItem {
                            src_ino: src_child,
                            dst_ino,
                            size: st.size,
                            attrs: st.attrs,
                            fbns,
                        });
                    } else {
                        stats.unchanged += 1;
                    }
                }
            }
        }
    }

    // ---- Ship the delta: dump-format records over the channel.
    for item in &plan {
        channel.write_record(
            DumpRecord::Inode {
                ino: item.src_ino,
                size: item.size,
                nblocks: item.fbns.len() as u64,
                kind: FileType::File,
                attrs: item.attrs.clone(),
            }
            .to_record(),
        )?;
        for run in item.fbns.chunks(DATA_RUN) {
            let mut blocks = Vec::with_capacity(run.len());
            for &fbn in run {
                blocks.push(src.read_fbn(item.src_ino, fbn)?);
            }
            stats.blocks_sent += run.len() as u64;
            channel.write_record(
                DumpRecord::Data {
                    ino: item.src_ino,
                    fbns: run.to_vec(),
                    blocks,
                }
                .to_record(),
            )?;
        }
        stats.files_sent += 1;
    }
    channel.write_record(
        DumpRecord::End {
            files: plan.len() as u64,
            dirs: 0,
            data_blocks: stats.blocks_sent,
        }
        .to_record(),
    )?;
    stats.bytes_sent = channel.total_bytes();

    // ---- Apply: replay the channel onto the target files.
    let by_src: BTreeMap<Ino, &SendItem> = plan.iter().map(|i| (i.src_ino, i)).collect();
    channel.rewind();
    let mut warnings = Vec::new();
    let mut applied_blocks = 0u64;
    while let Some(rec) = next_record(channel, &mut warnings)? {
        match rec {
            DumpRecord::Inode { ino, size, .. } => {
                let item = by_src.get(&ino).ok_or_else(|| DumpError::BadStream {
                    reason: format!("sync stream names unplanned inode {ino}"),
                })?;
                dst.set_attrs(item.dst_ino, item.attrs.clone())?;
                // Sizes shrink too: truncate to the exact source size.
                dst.set_size(item.dst_ino, size)?;
            }
            DumpRecord::Data { ino, fbns, blocks } => {
                let item = by_src.get(&ino).ok_or_else(|| DumpError::BadStream {
                    reason: format!("sync data for unplanned inode {ino}"),
                })?;
                for (fbn, block) in fbns.into_iter().zip(blocks) {
                    dst.write_fbn(item.dst_ino, fbn, block)?;
                    applied_blocks += 1;
                }
                // write_fbn may have grown the file; re-pin the size.
                dst.set_size(item.dst_ino, item.size)?;
            }
            DumpRecord::End { data_blocks, .. } => {
                if data_blocks != applied_blocks {
                    return Err(DumpError::BadStream {
                        reason: format!(
                            "sync trailer says {data_blocks} blocks but {applied_blocks} applied"
                        ),
                    });
                }
            }
            other => {
                return Err(DumpError::BadStream {
                    reason: format!("unexpected record in sync stream: {other:?}"),
                })
            }
        }
    }
    if !warnings.is_empty() {
        return Err(DumpError::BadStream {
            reason: format!("sync stream damaged: {}", warnings.join("; ")),
        });
    }
    dst.cp()?;
    Ok(stats)
}
