//! Logical (file-based) backup: a BSD-style `dump`/`restore` integrated
//! with WAFL the way the paper's §3 describes Network Appliance's version:
//!
//! - dumps from a snapshot, so the stream is a self-consistent image of an
//!   active file system;
//! - runs "in the kernel": it reads through the file system's own
//!   structures with its own read-ahead, no user/kernel copies;
//! - restore creates file handles straight from inode numbers and sets
//!   directory permissions at creation time (no final fix-up pass);
//! - the format carries the multiprotocol extras (DOS names/bits/times, NT
//!   ACLs) as compatible extensions.
//!
//! The stream layout follows classic BSD dump: a tape header, the two inode
//! bitmaps ("which inodes were in use" and "which have been written to the
//! backup"), *all directories before all files*, both in ascending inode
//! order, then an end record.

pub mod catalog;
pub mod dump;
pub mod format;
pub mod portability;
pub mod restore;
pub mod single;
pub mod sync;
pub mod toc;

pub use catalog::DumpCatalog;
pub use dump::dump;
pub use dump::DumpOptions;
pub use dump::DumpOutcome;
pub use format::DumpError;
pub use restore::restore;
pub use restore::RestoreOutcome;
pub use single::restore_single;
pub use single::restore_subtree;
pub use sync::logical_sync;
pub use sync::LogicalSyncStats;
pub use toc::list_contents;
pub use toc::verify_stream;
