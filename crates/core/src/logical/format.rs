//! The on-tape dump stream format.
//!
//! A dump stream is a sequence of tape records, each starting with a
//! literal-bytes header chunk. The format is *self-describing and
//! architecture neutral* (the paper's archival requirement): every integer
//! is little-endian at a documented offset, names are length-prefixed
//! UTF-8, and nothing in the stream refers to volume block numbers — which
//! is exactly why a logical stream restores onto any file system while an
//! image stream does not.
//!
//! Record types (the BSD `TS_*` naming is kept for recognizability):
//!
//! | type | meaning |
//! |------|---------|
//! | `TS_TAPE`  | stream header: level, dates, subtree root |
//! | `TS_BITS`  | inode bitmap: inodes in use / inodes dumped |
//! | `TS_DIR`   | one directory: attributes + entries |
//! | `TS_INODE` | one file's header: attributes, size |
//! | `TS_DATA`  | a run of that file's blocks (holes skipped) |
//! | `TS_END`   | trailer with totals for verification |

use blockdev::Block;
use simkit::media::Chunk;
use simkit::media::Record;
use wafl::types::Attrs;
use wafl::types::FileType;
use wafl::types::Ino;

/// Magic prefix of every record header ("WDMP").
pub const DUMP_MAGIC: u32 = 0x5744_4d50;
/// Format version.
pub const DUMP_VERSION: u8 = 1;

/// Maximum data blocks carried by one `TS_DATA` record (64 KiB of payload,
/// matching the dump read-ahead chunk).
pub const DATA_RUN: usize = 16;

/// Errors while writing or parsing a stream.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DumpError {
    /// The record is not a dump record or is structurally damaged.
    BadRecord {
        /// Why parsing failed.
        reason: String,
    },
    /// The stream ended unexpectedly or records arrived out of order.
    BadStream {
        /// What was expected.
        reason: String,
    },
    /// An unreadable media record was encountered (tape corruption, a
    /// poisoned network stream, ...).
    Media(simkit::media::MediaError),
    /// A file system error during dump or restore.
    Fs(wafl::WaflError),
    /// The requested path does not exist in the dump.
    NotInDump {
        /// The path looked for.
        path: String,
    },
    /// The machine lost power mid-operation (an armed
    /// [`simkit::crash::CrashPlan`] tripped). Recovery is a reboot:
    /// remount the file system and resume from the NVRAM checkpoint
    /// (dump) or rerun from the start (restore).
    Interrupted {
        /// The crash point that tripped.
        point: simkit::crash::CrashPoint,
    },
}

impl std::fmt::Display for DumpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DumpError::BadRecord { reason } => write!(f, "bad dump record: {reason}"),
            DumpError::BadStream { reason } => write!(f, "bad dump stream: {reason}"),
            DumpError::Media(e) => write!(f, "media error: {e}"),
            DumpError::Fs(e) => write!(f, "file system error: {e}"),
            DumpError::NotInDump { path } => write!(f, "not in dump: {path}"),
            DumpError::Interrupted { point } => write!(f, "power loss at {point}"),
        }
    }
}

impl std::error::Error for DumpError {}

impl From<wafl::WaflError> for DumpError {
    fn from(e: wafl::WaflError) -> Self {
        DumpError::Fs(e)
    }
}

impl From<simkit::media::MediaError> for DumpError {
    fn from(e: simkit::media::MediaError) -> Self {
        DumpError::Media(e)
    }
}

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_name(buf: &mut Vec<u8>, s: &str) {
    debug_assert!(s.len() <= u16::MAX as usize);
    put_u16(buf, s.len() as u16);
    buf.extend_from_slice(s.as_bytes());
}

/// Byte cursor for parsing headers.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn need(&self, n: usize) -> Result<(), DumpError> {
        if self.pos + n > self.buf.len() {
            Err(DumpError::BadRecord {
                reason: "truncated header".into(),
            })
        } else {
            Ok(())
        }
    }

    fn u8(&mut self) -> Result<u8, DumpError> {
        self.need(1)?;
        let v = self.buf[self.pos];
        self.pos += 1;
        Ok(v)
    }

    fn u16(&mut self) -> Result<u16, DumpError> {
        self.need(2)?;
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.buf[self.pos..self.pos + 2]);
        self.pos += 2;
        Ok(u16::from_le_bytes(b))
    }

    fn u32(&mut self) -> Result<u32, DumpError> {
        self.need(4)?;
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.buf[self.pos..self.pos + 4]);
        self.pos += 4;
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self) -> Result<u64, DumpError> {
        self.need(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.buf[self.pos..self.pos + 8]);
        self.pos += 8;
        Ok(u64::from_le_bytes(b))
    }

    fn name(&mut self) -> Result<String, DumpError> {
        let len = self.u16()? as usize;
        self.need(len)?;
        let s = String::from_utf8_lossy(&self.buf[self.pos..self.pos + len]).into_owned();
        self.pos += len;
        Ok(s)
    }

    fn bytes(&mut self, n: usize) -> Result<Vec<u8>, DumpError> {
        self.need(n)?;
        let v = self.buf[self.pos..self.pos + n].to_vec();
        self.pos += n;
        Ok(v)
    }
}

/// Serializes attributes (shared by `TS_DIR` and `TS_INODE`).
fn put_attrs(buf: &mut Vec<u8>, attrs: &Attrs) {
    put_u16(buf, attrs.perm);
    put_u32(buf, attrs.uid);
    put_u32(buf, attrs.gid);
    put_u64(buf, attrs.mtime);
    put_u64(buf, attrs.ctime);
    put_u64(buf, attrs.atime);
    buf.push(attrs.dos_attrs);
    put_u64(buf, attrs.dos_time);
    put_name(buf, attrs.dos_name.as_deref().unwrap_or(""));
    let acl = attrs.nt_acl.as_deref().unwrap_or(&[]);
    put_u16(buf, acl.len() as u16);
    buf.extend_from_slice(acl);
}

fn read_attrs(r: &mut Reader<'_>) -> Result<Attrs, DumpError> {
    let perm = r.u16()?;
    let uid = r.u32()?;
    let gid = r.u32()?;
    let mtime = r.u64()?;
    let ctime = r.u64()?;
    let atime = r.u64()?;
    let dos_attrs = r.u8()?;
    let dos_time = r.u64()?;
    let dos_name = r.name()?;
    let acl_len = r.u16()? as usize;
    let acl = r.bytes(acl_len)?;
    Ok(Attrs {
        perm,
        uid,
        gid,
        mtime,
        ctime,
        atime,
        dos_attrs,
        dos_time,
        dos_name: if dos_name.is_empty() {
            None
        } else {
            Some(dos_name)
        },
        nt_acl: if acl.is_empty() { None } else { Some(acl) },
    })
}

/// Which bitmap a `TS_BITS` record carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WhichMap {
    /// Inodes in use in the dumped subtree at dump time (detects deletions
    /// between incrementals).
    Used,
    /// Inodes actually written to this stream (verifies restores).
    Dumped,
}

/// One directory entry as carried on tape. The kind byte lets restore
/// pre-create the right object (and spot hard links) before the inode
/// records stream in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// Entry name.
    pub name: String,
    /// Source inode.
    pub ino: Ino,
    /// What the entry points at.
    pub kind: FileType,
}

/// A parsed dump record.
#[derive(Debug, Clone, PartialEq)]
pub enum DumpRecord {
    /// Stream header.
    Tape {
        /// Incremental level 0–9.
        level: u8,
        /// Dump date (file system ticks).
        dump_date: u64,
        /// Date of the base dump this increments (0 for level 0).
        base_date: u64,
        /// Volume name.
        volume: String,
        /// Inode of the dumped subtree's root.
        root_ino: Ino,
        /// One past the largest inode in the source.
        max_ino: Ino,
    },
    /// An inode bitmap.
    Bits {
        /// Which map this is.
        which: WhichMap,
        /// Bit `i` set ⇔ inode `i` is in the map.
        bits: Vec<u8>,
    },
    /// One directory with its entries.
    Dir {
        /// The directory's inode in the source.
        ino: Ino,
        /// Directory attributes.
        attrs: Attrs,
        /// The directory's entries.
        entries: Vec<DirEntry>,
    },
    /// One file's (or symlink's) header.
    Inode {
        /// The file's inode in the source.
        ino: Ino,
        /// Exact byte size.
        size: u64,
        /// Number of allocated (non-hole) blocks that follow in `TS_DATA`.
        nblocks: u64,
        /// Regular file or symlink (a symlink's data is its target path).
        kind: FileType,
        /// File attributes.
        attrs: Attrs,
    },
    /// A run of file blocks.
    Data {
        /// Owning file inode.
        ino: Ino,
        /// File block number of each payload chunk, in order.
        fbns: Vec<u64>,
        /// The payload blocks.
        blocks: Vec<Block>,
    },
    /// Stream trailer.
    End {
        /// Files written.
        files: u64,
        /// Directories written.
        dirs: u64,
        /// Data blocks written.
        data_blocks: u64,
    },
}

const T_TAPE: u8 = 1;
const T_BITS: u8 = 2;
const T_DIR: u8 = 3;
const T_INODE: u8 = 4;
const T_DATA: u8 = 5;
const T_END: u8 = 6;

fn header(rec_type: u8) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    put_u32(&mut buf, DUMP_MAGIC);
    buf.push(DUMP_VERSION);
    buf.push(rec_type);
    buf
}

/// Converts a block payload to a tape chunk (synthetic payloads stay
/// compact; everything else is literal).
pub fn block_to_chunk(block: &Block) -> Chunk {
    match block {
        Block::Synthetic(seed) => Chunk::Synthetic {
            seed: *seed,
            len: blockdev::BLOCK_SIZE as u32,
        },
        other => Chunk::Bytes(other.materialize().to_vec()),
    }
}

/// Converts a tape chunk back to a block payload.
pub fn chunk_to_block(chunk: &Chunk) -> Result<Block, DumpError> {
    match chunk {
        Chunk::Synthetic { seed, len } if *len as usize == blockdev::BLOCK_SIZE => {
            Ok(Block::Synthetic(*seed))
        }
        Chunk::Synthetic { .. } => Err(DumpError::BadRecord {
            reason: "synthetic chunk of non-block size".into(),
        }),
        Chunk::Bytes(b) if b.len() == blockdev::BLOCK_SIZE => Ok(Block::from_bytes(b)),
        Chunk::Bytes(_) => Err(DumpError::BadRecord {
            reason: "data chunk of non-block size".into(),
        }),
    }
}

impl DumpRecord {
    /// Serializes into a tape record.
    pub fn to_record(&self) -> Record {
        match self {
            DumpRecord::Tape {
                level,
                dump_date,
                base_date,
                volume,
                root_ino,
                max_ino,
            } => {
                let mut h = header(T_TAPE);
                h.push(*level);
                put_u64(&mut h, *dump_date);
                put_u64(&mut h, *base_date);
                put_name(&mut h, volume);
                put_u32(&mut h, *root_ino);
                put_u32(&mut h, *max_ino);
                Record::from_bytes(h)
            }
            DumpRecord::Bits { which, bits } => {
                let mut h = header(T_BITS);
                h.push(match which {
                    WhichMap::Used => 0,
                    WhichMap::Dumped => 1,
                });
                put_u32(&mut h, bits.len() as u32);
                let mut rec = Record::from_bytes(h);
                rec.push(Chunk::Bytes(bits.clone()));
                rec
            }
            DumpRecord::Dir {
                ino,
                attrs,
                entries,
            } => {
                let mut h = header(T_DIR);
                put_u32(&mut h, *ino);
                put_attrs(&mut h, attrs);
                put_u32(&mut h, entries.len() as u32);
                let mut payload = Vec::new();
                for e in entries {
                    put_u32(&mut payload, e.ino);
                    payload.push(e.kind.to_tag());
                    put_name(&mut payload, &e.name);
                }
                let mut rec = Record::from_bytes(h);
                rec.push(Chunk::Bytes(payload));
                rec
            }
            DumpRecord::Inode {
                ino,
                size,
                nblocks,
                kind,
                attrs,
            } => {
                let mut h = header(T_INODE);
                put_u32(&mut h, *ino);
                put_u64(&mut h, *size);
                put_u64(&mut h, *nblocks);
                h.push(kind.to_tag());
                put_attrs(&mut h, attrs);
                // BSD dump prefixes each file with 1 KiB of header
                // meta-data; pad to keep the on-tape overhead realistic.
                h.resize(h.len().max(1024), 0);
                Record::from_bytes(h)
            }
            DumpRecord::Data { ino, fbns, blocks } => {
                let mut h = header(T_DATA);
                put_u32(&mut h, *ino);
                put_u32(&mut h, fbns.len() as u32);
                for &fbn in fbns {
                    put_u64(&mut h, fbn);
                }
                let mut rec = Record::from_bytes(h);
                for b in blocks {
                    rec.push(block_to_chunk(b));
                }
                rec
            }
            DumpRecord::End {
                files,
                dirs,
                data_blocks,
            } => {
                let mut h = header(T_END);
                put_u64(&mut h, *files);
                put_u64(&mut h, *dirs);
                put_u64(&mut h, *data_blocks);
                Record::from_bytes(h)
            }
        }
    }

    /// Parses a tape record.
    pub fn parse(rec: &Record) -> Result<DumpRecord, DumpError> {
        let chunks = rec.chunks();
        let head = match chunks.first() {
            Some(Chunk::Bytes(b)) => b,
            _ => {
                return Err(DumpError::BadRecord {
                    reason: "missing header chunk".into(),
                })
            }
        };
        let mut r = Reader::new(head);
        if r.u32()? != DUMP_MAGIC {
            return Err(DumpError::BadRecord {
                reason: "bad magic".into(),
            });
        }
        if r.u8()? != DUMP_VERSION {
            return Err(DumpError::BadRecord {
                reason: "unsupported version".into(),
            });
        }
        match r.u8()? {
            T_TAPE => Ok(DumpRecord::Tape {
                level: r.u8()?,
                dump_date: r.u64()?,
                base_date: r.u64()?,
                volume: r.name()?,
                root_ino: r.u32()?,
                max_ino: r.u32()?,
            }),
            T_BITS => {
                let which = match r.u8()? {
                    0 => WhichMap::Used,
                    1 => WhichMap::Dumped,
                    _ => {
                        return Err(DumpError::BadRecord {
                            reason: "unknown bitmap kind".into(),
                        })
                    }
                };
                let len = r.u32()? as usize;
                let bits = match chunks.get(1) {
                    Some(Chunk::Bytes(b)) if b.len() == len => b.clone(),
                    _ => {
                        return Err(DumpError::BadRecord {
                            reason: "bitmap payload mismatch".into(),
                        })
                    }
                };
                Ok(DumpRecord::Bits { which, bits })
            }
            T_DIR => {
                let ino = r.u32()?;
                let attrs = read_attrs(&mut r)?;
                let n = r.u32()? as usize;
                let payload = match chunks.get(1) {
                    Some(Chunk::Bytes(b)) => b,
                    _ => {
                        return Err(DumpError::BadRecord {
                            reason: "missing dir payload".into(),
                        })
                    }
                };
                let mut pr = Reader::new(payload);
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let child = pr.u32()?;
                    let kind = FileType::from_tag(pr.u8()?).ok_or(DumpError::BadRecord {
                        reason: "bad entry kind".into(),
                    })?;
                    let name = pr.name()?;
                    entries.push(DirEntry {
                        name,
                        ino: child,
                        kind,
                    });
                }
                Ok(DumpRecord::Dir {
                    ino,
                    attrs,
                    entries,
                })
            }
            T_INODE => Ok(DumpRecord::Inode {
                ino: r.u32()?,
                size: r.u64()?,
                nblocks: r.u64()?,
                kind: {
                    let tag = r.u8()?;
                    match FileType::from_tag(tag) {
                        Some(FileType::File) => FileType::File,
                        Some(FileType::Symlink) => FileType::Symlink,
                        _ => {
                            return Err(DumpError::BadRecord {
                                reason: format!("bad inode kind {tag}"),
                            })
                        }
                    }
                },
                attrs: read_attrs(&mut r)?,
            }),
            T_DATA => {
                let ino = r.u32()?;
                let n = r.u32()? as usize;
                let mut fbns = Vec::with_capacity(n);
                for _ in 0..n {
                    fbns.push(r.u64()?);
                }
                if chunks.len() != n + 1 {
                    return Err(DumpError::BadRecord {
                        reason: format!("expected {n} data chunks, got {}", chunks.len() - 1),
                    });
                }
                let mut blocks = Vec::with_capacity(n);
                for c in &chunks[1..] {
                    blocks.push(chunk_to_block(c)?);
                }
                Ok(DumpRecord::Data { ino, fbns, blocks })
            }
            T_END => Ok(DumpRecord::End {
                files: r.u64()?,
                dirs: r.u64()?,
                data_blocks: r.u64()?,
            }),
            t => Err(DumpError::BadRecord {
                reason: format!("unknown record type {t}"),
            }),
        }
    }
}

/// An inode bitmap (the two `TS_BITS` maps).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InoMap {
    bits: Vec<u8>,
}

impl InoMap {
    /// An empty map sized for `max_ino` inodes.
    pub fn new(max_ino: Ino) -> InoMap {
        InoMap {
            bits: vec![0; (max_ino as usize).div_ceil(8)],
        }
    }

    /// Rebuilds from serialized bytes.
    pub fn from_bytes(bits: Vec<u8>) -> InoMap {
        InoMap { bits }
    }

    /// The serialized bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bits
    }

    /// Sets inode `ino`.
    pub fn set(&mut self, ino: Ino) {
        let idx = ino as usize / 8;
        if idx >= self.bits.len() {
            self.bits.resize(idx + 1, 0);
        }
        self.bits[idx] |= 1 << (ino % 8);
    }

    /// Tests inode `ino`.
    pub fn get(&self, ino: Ino) -> bool {
        self.bits
            .get(ino as usize / 8)
            .map(|b| b & (1 << (ino % 8)) != 0)
            .unwrap_or(false)
    }

    /// Number of set bits.
    pub fn count(&self) -> u64 {
        self.bits.iter().map(|b| b.count_ones() as u64).sum()
    }

    /// Iterates set inodes.
    pub fn iter(&self) -> impl Iterator<Item = Ino> + '_ {
        self.bits.iter().enumerate().flat_map(|(i, &b)| {
            (0..8)
                .filter(move |bit| b & (1 << bit) != 0)
                .map(move |bit| (i * 8 + bit) as Ino)
        })
    }
}

/// The file type a dumped inode had (encoded in attrs? No — the record type
/// distinguishes: `TS_DIR` vs `TS_INODE`). Kept for cross-restore adapters.
pub fn record_file_type(rec: &DumpRecord) -> Option<FileType> {
    match rec {
        DumpRecord::Dir { .. } => Some(FileType::Dir),
        DumpRecord::Inode { .. } => Some(FileType::File),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attrs() -> Attrs {
        Attrs {
            perm: 0o755,
            uid: 10,
            gid: 20,
            mtime: 111,
            ctime: 222,
            atime: 333,
            dos_attrs: 0x20,
            dos_time: 444,
            dos_name: Some("SHORT~1".into()),
            nt_acl: Some(vec![1, 2, 3]),
        }
    }

    #[test]
    fn tape_header_round_trips() {
        let rec = DumpRecord::Tape {
            level: 3,
            dump_date: 1000,
            base_date: 500,
            volume: "home".into(),
            root_ino: 2,
            max_ino: 5000,
        };
        assert_eq!(DumpRecord::parse(&rec.to_record()).unwrap(), rec);
    }

    #[test]
    fn bits_round_trip() {
        let mut map = InoMap::new(100);
        map.set(2);
        map.set(7);
        map.set(99);
        let rec = DumpRecord::Bits {
            which: WhichMap::Used,
            bits: map.as_bytes().to_vec(),
        };
        let back = DumpRecord::parse(&rec.to_record()).unwrap();
        match back {
            DumpRecord::Bits { which, bits } => {
                assert_eq!(which, WhichMap::Used);
                let m = InoMap::from_bytes(bits);
                assert!(m.get(2) && m.get(7) && m.get(99));
                assert!(!m.get(3));
                assert_eq!(m.count(), 3);
                assert_eq!(m.iter().collect::<Vec<_>>(), vec![2, 7, 99]);
            }
            other => panic!("wrong record: {other:?}"),
        }
    }

    #[test]
    fn dir_round_trips_with_attrs() {
        let rec = DumpRecord::Dir {
            ino: 42,
            attrs: attrs(),
            entries: vec![
                DirEntry {
                    name: "hello".into(),
                    ino: 43,
                    kind: FileType::File,
                },
                DirEntry {
                    name: "world.txt".into(),
                    ino: 44,
                    kind: FileType::Symlink,
                },
            ],
        };
        assert_eq!(DumpRecord::parse(&rec.to_record()).unwrap(), rec);
    }

    #[test]
    fn inode_header_is_at_least_1k() {
        // Paper: "Each file and directory is prefixed with 1KB of header
        // meta-data."
        let rec = DumpRecord::Inode {
            ino: 7,
            size: 123,
            nblocks: 1,
            kind: FileType::File,
            attrs: attrs(),
        };
        let tape_rec = rec.to_record();
        assert!(tape_rec.len() >= 1024);
        assert_eq!(DumpRecord::parse(&tape_rec).unwrap(), rec);
    }

    #[test]
    fn data_round_trips_both_payload_kinds() {
        let rec = DumpRecord::Data {
            ino: 9,
            fbns: vec![0, 5, 6],
            blocks: vec![
                Block::Synthetic(77),
                Block::from_bytes(&[1, 2, 3]),
                Block::Zero,
            ],
        };
        let back = DumpRecord::parse(&rec.to_record()).unwrap();
        match back {
            DumpRecord::Data { ino, fbns, blocks } => {
                assert_eq!(ino, 9);
                assert_eq!(fbns, vec![0, 5, 6]);
                assert!(blocks[0].same_content(&Block::Synthetic(77)));
                assert!(blocks[1].same_content(&Block::from_bytes(&[1, 2, 3])));
                assert!(blocks[2].same_content(&Block::Zero));
            }
            other => panic!("wrong record: {other:?}"),
        }
    }

    #[test]
    fn end_round_trips() {
        let rec = DumpRecord::End {
            files: 10,
            dirs: 3,
            data_blocks: 500,
        };
        assert_eq!(DumpRecord::parse(&rec.to_record()).unwrap(), rec);
    }

    #[test]
    fn garbage_is_rejected() {
        let garbage = Record::from_bytes(vec![0xff; 64]);
        assert!(DumpRecord::parse(&garbage).is_err());
        let empty = Record::empty();
        assert!(DumpRecord::parse(&empty).is_err());
    }

    #[test]
    fn data_chunk_count_mismatch_is_rejected() {
        let rec = DumpRecord::Data {
            ino: 1,
            fbns: vec![0, 1],
            blocks: vec![Block::Zero, Block::Zero],
        };
        let mut tape_rec = rec.to_record();
        tape_rec.push(Chunk::Bytes(vec![0; blockdev::BLOCK_SIZE]));
        assert!(DumpRecord::parse(&tape_rec).is_err());
    }

    #[test]
    fn inomap_grows_on_demand() {
        let mut m = InoMap::new(8);
        m.set(1000);
        assert!(m.get(1000));
        assert!(!m.get(999));
    }
}
