//! Single-file and subtree restore — "stupidity recovery".
//!
//! "If a user accidentally deletes a file, a logical restore can locate the
//! file on tape, and restore only that file" (§3). The desiccated
//! directory table from the stream head is enough to run `namei` without
//! touching the target file system; only the selected inodes' records are
//! then extracted from the data section.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use simkit::media::Media;
use wafl::types::Attrs;
use wafl::types::FileType;
use wafl::types::Ino;
use wafl::Wafl;

use crate::logical::format::DumpError;
use crate::logical::format::DumpRecord;
use crate::logical::restore::next_record;
use crate::logical::restore::read_stream_head;
use crate::logical::restore::StreamHead;

/// Outcome of a selective restore.
#[derive(Debug)]
pub struct SingleRestoreOutcome {
    /// Files recreated.
    pub files: u64,
    /// Directories recreated.
    pub dirs: u64,
    /// Data blocks written.
    pub data_blocks: u64,
    /// Non-fatal problems.
    pub warnings: Vec<String>,
}

/// Resolves `path` inside the dump's directory table.
fn dump_namei(head: &StreamHead, path: &str) -> Result<Ino, DumpError> {
    let mut ino = head.root_ino;
    for comp in path.split('/').filter(|c| !c.is_empty()) {
        let (_, entries) = head.dirs.get(&ino).ok_or_else(|| DumpError::NotInDump {
            path: path.to_string(),
        })?;
        ino = entries
            .iter()
            .find(|e| e.name == comp)
            .map(|e| e.ino)
            .ok_or_else(|| DumpError::NotInDump {
                path: path.to_string(),
            })?;
    }
    Ok(ino)
}

/// Restores the single file at `dump_path` (a path within the dump) into
/// the existing directory `target_dir`, keeping its base name.
pub fn restore_single(
    fs: &mut Wafl,
    drive: &mut dyn Media,
    dump_path: &str,
    target_dir: &str,
) -> Result<SingleRestoreOutcome, DumpError> {
    restore_subtree(fs, drive, dump_path, target_dir)
}

/// Restores the file **or subtree** at `dump_path` into `target_dir`.
pub fn restore_subtree(
    fs: &mut Wafl,
    drive: &mut dyn Media,
    dump_path: &str,
    target_dir: &str,
) -> Result<SingleRestoreOutcome, DumpError> {
    let head = read_stream_head(drive)?;
    let mut warnings = head.warnings.clone();
    let selected_root = dump_namei(&head, dump_path)?;
    let base_name = dump_path
        .split('/')
        .rfind(|c| !c.is_empty())
        .ok_or_else(|| DumpError::NotInDump {
            path: dump_path.to_string(),
        })?;
    let target_parent = fs.namei(target_dir)?;

    // Collect the wanted inode set and create the directory skeleton.
    let mut wanted_files: BTreeSet<Ino> = BTreeSet::new();
    let mut ino_map: BTreeMap<Ino, Ino> = BTreeMap::new();
    let mut dirs = 0u64;
    let mut files = 0u64;

    if let Some((attrs, _)) = head.dirs.get(&selected_root).cloned() {
        // A subtree: recreate its directories under the target.
        let new_root = fs.create(target_parent, base_name, FileType::Dir, attrs)?;
        dirs += 1;
        ino_map.insert(selected_root, new_root);
        let mut stack = vec![(selected_root, new_root)];
        while let Some((old_dir, new_dir)) = stack.pop() {
            let Some((_, entries)) = head.dirs.get(&old_dir) else {
                continue;
            };
            for entry in entries.clone() {
                let (name, old_child) = (entry.name, entry.ino);
                if let Some((attrs, _)) = head.dirs.get(&old_child).cloned() {
                    let new_child = fs.create(new_dir, &name, FileType::Dir, attrs)?;
                    dirs += 1;
                    ino_map.insert(old_child, new_child);
                    stack.push((old_child, new_child));
                } else if head.dumped.get(old_child) {
                    if let Some(&linked) = ino_map.get(&old_child) {
                        // Another name for a file already recreated in this
                        // subtree: restore the hard link.
                        fs.link(new_dir, &name, linked)?;
                        continue;
                    }
                    let new_child = match entry.kind {
                        FileType::Symlink => {
                            fs.create_symlink(new_dir, &name, "", Attrs::default())?
                        }
                        _ => fs.create(new_dir, &name, FileType::File, Attrs::default())?,
                    };
                    files += 1;
                    ino_map.insert(old_child, new_child);
                    wanted_files.insert(old_child);
                }
            }
        }
    } else {
        // A single file.
        if !head.dumped.get(selected_root) {
            return Err(DumpError::NotInDump {
                path: dump_path.to_string(),
            });
        }
        let new_ino = fs.create(target_parent, base_name, FileType::File, Attrs::default())?;
        files += 1;
        ino_map.insert(selected_root, new_ino);
        wanted_files.insert(selected_root);
    }

    // Scan the data section, extracting only the wanted inodes.
    let mut data_blocks = 0u64;
    let mut pending: Option<(Ino, u64)> = None;
    let mut rec = head.pending.clone();
    loop {
        let record = match rec.take() {
            Some(r) => r,
            None => match next_record(drive, &mut warnings)? {
                Some(r) => r,
                None => break,
            },
        };
        match record {
            DumpRecord::Inode {
                ino, size, attrs, ..
            } => {
                if let Some((prev, sz)) = pending.take() {
                    fs.set_size(prev, sz)?;
                }
                if wanted_files.contains(&ino) {
                    let new_ino = ino_map[&ino];
                    fs.set_attrs(new_ino, attrs)?;
                    pending = Some((new_ino, size));
                }
            }
            DumpRecord::Data { ino, fbns, blocks } => {
                if wanted_files.contains(&ino) {
                    let new_ino = ino_map[&ino];
                    for (fbn, block) in fbns.into_iter().zip(blocks) {
                        fs.write_fbn(new_ino, fbn, block)?;
                        data_blocks += 1;
                    }
                }
            }
            DumpRecord::End { .. } => break,
            other => warnings.push(format!("unexpected record: {other:?}")),
        }
    }
    if let Some((prev, sz)) = pending.take() {
        fs.set_size(prev, sz)?;
    }
    fs.cp()?;
    Ok(SingleRestoreOutcome {
        files,
        dirs,
        data_blocks,
        warnings,
    })
}
