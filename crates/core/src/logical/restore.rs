//! Full and incremental restore from a dump stream.
//!
//! Restore first reads the directory records (which the format guarantees
//! precede all files) into an in-memory "desiccated" directory table —
//! exactly the paper's description: restore can run its own `namei` over
//! this table "without ever laying this directory structure on the file
//! system".
//!
//! The kernel-integration fast paths from §3 are both here: files are
//! addressed through the old-inode → new-inode table (the equivalent of
//! building a file handle straight from the inode number in the stream),
//! and directory permissions are set at creation time, so there is no
//! final fix-up pass.
//!
//! Incremental semantics: a dumped directory's entry list is authoritative
//! — names present on the target but absent from the list were deleted (or
//! renamed) since the base dump and are removed. Files in the *dumped*
//! bitmap are recreated from the stream; files in the *used* bitmap only
//! are untouched. A corrupted tape record costs only the file(s) it
//! covered: restore resynchronizes at the next record ("a minor tape
//! corruption will usually affect only that single file").

use std::collections::BTreeMap;

use simkit::crash::CrashPoint;
use simkit::media::Media;
use simkit::media::MediaError;
use wafl::types::Attrs;
use wafl::types::FileType;
use wafl::types::Ino;
use wafl::Wafl;
use wafl::WaflError;

use crate::crashpoint::power_fire;
use crate::logical::format::DumpError;
use crate::logical::format::DumpRecord;
use crate::logical::format::InoMap;
use crate::logical::format::WhichMap;
use crate::report::Profiler;

/// What a restore produced.
#[derive(Debug)]
pub struct RestoreOutcome {
    /// Per-stage resource profiles.
    pub profiler: Profiler,
    /// Files created (or replaced).
    pub files: u64,
    /// Directories created or updated.
    pub dirs: u64,
    /// Data blocks written.
    pub data_blocks: u64,
    /// Target entries deleted by incremental reconciliation.
    pub deleted: u64,
    /// Non-fatal problems (corrupt records skipped, stray data, ...).
    pub warnings: Vec<String>,
    /// Source-inode → restored-inode table (the symbol table successive
    /// incremental restores would consult).
    pub ino_map: BTreeMap<Ino, Ino>,
    /// The level recorded in the stream header.
    pub level: u8,
    /// Inodes the source had in use at dump time (from the first bitmap).
    pub used_inodes: u64,
}

/// The desiccated directory table parsed from the stream head.
pub(crate) struct StreamHead {
    pub(crate) root_ino: Ino,
    pub(crate) level: u8,
    pub(crate) used: InoMap,
    pub(crate) dumped: InoMap,
    pub(crate) dirs: BTreeMap<Ino, (Attrs, Vec<crate::logical::format::DirEntry>)>,
    /// First non-header record, if any (a file header usually).
    pub(crate) pending: Option<DumpRecord>,
    pub(crate) warnings: Vec<String>,
}

/// Reads the stream head: tape header, bitmaps, and every directory
/// record.
pub(crate) fn read_stream_head(drive: &mut dyn Media) -> Result<StreamHead, DumpError> {
    drive.rewind();
    let first = next_record(drive, &mut Vec::new())?.ok_or(DumpError::BadStream {
        reason: "empty tape".into(),
    })?;
    let (root_ino, level) = match first {
        DumpRecord::Tape {
            root_ino, level, ..
        } => (root_ino, level),
        other => {
            return Err(DumpError::BadStream {
                reason: format!("expected tape header, got {other:?}"),
            })
        }
    };
    let mut used = InoMap::default();
    let mut dumped = InoMap::default();
    let mut dirs = BTreeMap::new();
    let mut pending = None;
    let mut warnings = Vec::new();
    while let Some(rec) = next_record(drive, &mut warnings)? {
        match rec {
            DumpRecord::Bits { which, bits } => match which {
                WhichMap::Used => used = InoMap::from_bytes(bits),
                WhichMap::Dumped => dumped = InoMap::from_bytes(bits),
            },
            DumpRecord::Dir {
                ino,
                attrs,
                entries,
            } => {
                dirs.insert(ino, (attrs, entries));
            }
            other => {
                pending = Some(other);
                break;
            }
        }
    }
    Ok(StreamHead {
        root_ino,
        level,
        used,
        dumped,
        dirs,
        pending,
        warnings,
    })
}

/// Reads the next parseable record, skipping damaged ones with a warning.
pub(crate) fn next_record(
    drive: &mut dyn Media,
    warnings: &mut Vec<String>,
) -> Result<Option<DumpRecord>, DumpError> {
    loop {
        match drive.read_record() {
            Ok(rec) => match DumpRecord::parse(&rec) {
                Ok(parsed) => return Ok(Some(parsed)),
                Err(e) => warnings.push(format!("skipped unparseable record: {e}")),
            },
            Err(MediaError::EndOfData) => return Ok(None),
            Err(MediaError::BadRecord { index }) => {
                warnings.push(format!("skipped damaged tape record {index}"));
                drive.skip_record()?;
            }
            Err(e) => return Err(DumpError::Media(e)),
        }
    }
}

/// Restores a dump stream into the directory `target` (use "/" to restore
/// a whole-volume dump in place). Apply a level-0 stream first, then each
/// incremental in order.
///
/// Prefer [`crate::engine::BackupEngine`] (via [`crate::engine::LogicalEngine`])
/// for new callers; this free function remains as the low-level entry point
/// the engine delegates to.
pub fn restore(
    fs: &mut Wafl,
    drive: &mut dyn Media,
    target: &str,
) -> Result<RestoreOutcome, DumpError> {
    let profiler = Profiler::new();
    let meter = fs.meter();
    let costs = *fs.costs();
    let op_span = profiler.stage("logical restore", fs);

    // ---- Stage: read directories + create the tree ("creating files").
    let mut create_span = profiler.stage("creating files", fs);
    let mut head = read_stream_head(drive)?;
    let mut warnings = std::mem::take(&mut head.warnings);

    let target_root = fs.namei(target)?;
    let mut ino_map: BTreeMap<Ino, Ino> = BTreeMap::new();
    let mut deleted = 0u64;
    let mut dirs_done = 0u64;
    let mut files_created = 0u64;

    // DFS over the dumped directory tree; parents are created before
    // children by construction.
    let mut stack: Vec<(Ino, Ino)> = vec![(head.root_ino, target_root)];
    ino_map.insert(head.root_ino, target_root);
    if let Some((attrs, _)) = head.dirs.get(&head.root_ino) {
        // The dump root's own attributes apply to the target directory.
        fs.set_attrs(target_root, attrs.clone())?;
    }
    while let Some((old_dir, new_dir)) = stack.pop() {
        let Some((_, entries)) = head.dirs.get(&old_dir) else {
            continue;
        };
        dirs_done += 1;
        // Reconciliation: names on the target that the (authoritative)
        // dumped listing no longer has were deleted since the base.
        let existing = fs.readdir(new_dir)?;
        for (name, _) in existing {
            if !entries.iter().any(|e| e.name == name) {
                remove_recursive(fs, new_dir, &name)?;
                deleted += 1;
            }
        }
        for entry in entries.clone() {
            let name = entry.name;
            let old_child = entry.ino;
            let dir_attrs = if entry.kind == FileType::Dir {
                head.dirs.get(&old_child).map(|(a, _)| a.clone())
            } else {
                None
            };
            if let Some(attrs) = dir_attrs {
                let new_child = match fs.lookup(new_dir, &name) {
                    Ok(existing_ino) => {
                        // Permissions are set at creation for new dirs; for
                        // survivors, refresh them from the stream.
                        fs.set_attrs(existing_ino, attrs)?;
                        existing_ino
                    }
                    Err(WaflError::NotFound { .. }) => {
                        meter.charge_cpu(costs.restore_file);
                        fs.create(new_dir, &name, FileType::Dir, attrs)?
                    }
                    Err(e) => return Err(e.into()),
                };
                ino_map.insert(old_child, new_child);
                stack.push((old_child, new_child));
            } else if head.dumped.get(old_child) {
                // A file/symlink that will arrive in the data section:
                // (re)create it empty now — the "creating files" phase. A
                // source inode seen before is another name for the same
                // file: hard-link it instead.
                if fs.lookup(new_dir, &name).is_ok() {
                    fs.remove(new_dir, &name)?;
                }
                meter.charge_cpu(costs.restore_file);
                if let Some(&linked) = ino_map.get(&old_child) {
                    fs.link(new_dir, &name, linked)?;
                } else {
                    let new_child = match entry.kind {
                        FileType::Symlink => {
                            fs.create_symlink(new_dir, &name, "", Attrs::default())?
                        }
                        _ => fs.create(new_dir, &name, FileType::File, Attrs::default())?,
                    };
                    ino_map.insert(old_child, new_child);
                    files_created += 1;
                }
            }
            // Entries that are neither dumped dirs nor dumped files are
            // unchanged since the base dump; leave them alone.
        }
    }
    create_span.counts(files_created, dirs_done, 0);
    drop(create_span);

    // ---- Stage: stream the file contents ("filling in data").
    let mut fill_span = profiler.stage("filling in data", fs);
    let mut data_blocks = 0u64;
    let mut current: Option<(Ino, u64)> = None; // (new ino, final size)
    let mut end_seen = false;
    let mut rec = head.pending.take();
    loop {
        // Crash point: power loss mid-restore. A logical restore goes
        // through the file system, so a reboot replays NVRAM and the
        // recovery procedure is simply rerunning the restore (paper
        // footnote 2: restores legitimately bypass logging because an
        // interrupted restore just restarts).
        if power_fire(CrashPoint::Restore) {
            return Err(DumpError::Interrupted {
                point: CrashPoint::Restore,
            });
        }
        let record = match rec.take() {
            Some(r) => r,
            None => match next_record(drive, &mut warnings)? {
                Some(r) => r,
                None => break,
            },
        };
        match record {
            DumpRecord::Inode {
                ino, size, attrs, ..
            } => {
                finalize_file(fs, &mut current)?;
                match ino_map.get(&ino) {
                    Some(&new_ino) => {
                        fs.set_attrs(new_ino, attrs)?;
                        current = Some((new_ino, size));
                    }
                    None => {
                        warnings.push(format!(
                            "file inode {ino} has no directory entry; skipping its data"
                        ));
                        current = None;
                    }
                }
            }
            DumpRecord::Data { ino, fbns, blocks } => {
                let target_ino = match current {
                    Some((new_ino, _)) if ino_map.get(&ino) == Some(&new_ino) => Some(new_ino),
                    _ => ino_map.get(&ino).copied(),
                };
                match target_ino {
                    Some(new_ino) => {
                        // Stream-parse cost, the mirror image of dump's
                        // format conversion.
                        meter.charge_cpu(costs.dump_format_block * fbns.len() as f64);
                        for (fbn, block) in fbns.into_iter().zip(blocks) {
                            fs.write_fbn(new_ino, fbn, block)?;
                            data_blocks += 1;
                        }
                    }
                    None => warnings.push(format!("stray data for undumped inode {ino}")),
                }
            }
            DumpRecord::End {
                files,
                data_blocks: expect_blocks,
                ..
            } => {
                finalize_file(fs, &mut current)?;
                end_seen = true;
                if files != files_created {
                    warnings.push(format!(
                        "trailer says {files} files but {files_created} were created"
                    ));
                }
                if expect_blocks != data_blocks {
                    warnings.push(format!(
                        "trailer says {expect_blocks} blocks but {data_blocks} were written"
                    ));
                }
            }
            other => warnings.push(format!("unexpected record in data section: {other:?}")),
        }
    }
    finalize_file(fs, &mut current)?;
    if !end_seen {
        warnings.push("stream ended without trailer".into());
    }
    fs.cp()?;
    fill_span.counts(files_created, 0, data_blocks);
    drop(fill_span);
    drop(op_span);

    Ok(RestoreOutcome {
        profiler,
        files: files_created,
        dirs: dirs_done,
        data_blocks,
        deleted,
        warnings,
        ino_map,
        level: head.level,
        used_inodes: head.used.count(),
    })
}

/// Applies the exact recorded size (captures trailing holes/truncation).
fn finalize_file(fs: &mut Wafl, current: &mut Option<(Ino, u64)>) -> Result<(), DumpError> {
    if let Some((ino, size)) = current.take() {
        fs.set_size(ino, size)?;
    }
    Ok(())
}

/// Removes a name and everything under it.
pub(crate) fn remove_recursive(fs: &mut Wafl, parent: Ino, name: &str) -> Result<(), WaflError> {
    let ino = fs.lookup(parent, name)?;
    if fs.stat(ino)?.ftype == FileType::Dir {
        let children = fs.readdir(ino)?;
        for (child_name, _) in children {
            remove_recursive(fs, ino, &child_name)?;
        }
    }
    fs.remove(parent, name)
}
