//! The `dumpdates` catalog: which dump of which subtree happened when.
//!
//! An incremental dump at level `n` backs up files changed since its
//! *base*: the most recent dump of the same subtree at any level below `n`
//! (the standard BSD scheme, levels 0–9).

/// One recorded dump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogEntry {
    /// Subtree that was dumped ("/" for the whole volume).
    pub path: String,
    /// Dump level 0–9.
    pub level: u8,
    /// Dump date in file system ticks.
    pub date: u64,
}

/// The dumpdates database.
#[derive(Debug, Clone, Default)]
pub struct DumpCatalog {
    entries: Vec<CatalogEntry>,
}

impl DumpCatalog {
    /// An empty catalog.
    pub fn new() -> DumpCatalog {
        DumpCatalog::default()
    }

    /// Records a completed dump, replacing any previous entry for the same
    /// path and level (exactly how `/etc/dumpdates` behaves).
    pub fn record(&mut self, path: &str, level: u8, date: u64) {
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|e| e.path == path && e.level == level)
        {
            e.date = date;
        } else {
            self.entries.push(CatalogEntry {
                path: path.into(),
                level,
                date,
            });
        }
    }

    /// The base for a level-`level` dump of `path`: the newest recorded
    /// dump of the same path at a strictly lower level. `None` means "dump
    /// everything" (date 0).
    pub fn base_for(&self, path: &str, level: u8) -> Option<&CatalogEntry> {
        self.entries
            .iter()
            .filter(|e| e.path == path && e.level < level)
            .max_by_key(|e| e.date)
    }

    /// All entries (for display).
    pub fn entries(&self) -> &[CatalogEntry] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level0_has_no_base() {
        let mut c = DumpCatalog::new();
        c.record("/", 0, 100);
        assert_eq!(c.base_for("/", 0), None);
    }

    #[test]
    fn base_is_newest_lower_level() {
        let mut c = DumpCatalog::new();
        c.record("/", 0, 100);
        c.record("/", 1, 200);
        c.record("/", 2, 300);
        // A level-2 dump after these should base on the level-1 at 200...
        // unless a newer level-1 appears.
        assert_eq!(c.base_for("/", 2).unwrap().date, 200);
        c.record("/", 1, 400);
        assert_eq!(c.base_for("/", 2).unwrap().date, 400);
        // Level 1 bases on the full.
        assert_eq!(c.base_for("/", 1).unwrap().date, 100);
    }

    #[test]
    fn paths_are_independent() {
        let mut c = DumpCatalog::new();
        c.record("/qtree0", 0, 10);
        c.record("/qtree1", 0, 20);
        assert_eq!(c.base_for("/qtree0", 1).unwrap().date, 10);
        assert_eq!(c.base_for("/qtree1", 1).unwrap().date, 20);
        assert_eq!(c.base_for("/qtree2", 1), None);
    }

    #[test]
    fn rerecording_replaces() {
        let mut c = DumpCatalog::new();
        c.record("/", 0, 10);
        c.record("/", 0, 50);
        assert_eq!(c.entries().len(), 1);
        assert_eq!(c.base_for("/", 5).unwrap().date, 50);
    }
}
