//! End-to-end logical dump/restore tests (paper §3).

use backup_core::logical::catalog::DumpCatalog;
use backup_core::logical::dump::dump;
use backup_core::logical::dump::DumpOptions;
use backup_core::logical::restore::restore;
use backup_core::verify::compare_subtrees;
use blockdev::Block;
use blockdev::DiskPerf;
use raid::Volume;
use raid::VolumeGeometry;
use tape::TapeDrive;
use tape::TapePerf;
use wafl::types::Attrs;
use wafl::types::FileType;
use wafl::types::WaflConfig;
use wafl::types::INO_ROOT;
use wafl::Wafl;

fn fs() -> Wafl {
    let vol = Volume::new(VolumeGeometry::uniform(2, 4, 4096, DiskPerf::ideal()));
    Wafl::format(vol, WaflConfig::default()).unwrap()
}

fn drive() -> TapeDrive {
    TapeDrive::new(TapePerf::ideal(), 1 << 30)
}

/// Builds a small multi-level tree with holes and multiprotocol attrs.
fn populate(fs: &mut Wafl) {
    let docs = fs
        .create(INO_ROOT, "docs", FileType::Dir, Attrs::default())
        .unwrap();
    let src = fs
        .create(INO_ROOT, "src", FileType::Dir, Attrs::default())
        .unwrap();
    let deep = fs
        .create(src, "deep", FileType::Dir, Attrs::default())
        .unwrap();

    let a = fs
        .create(docs, "a.txt", FileType::File, Attrs::default())
        .unwrap();
    for i in 0..20 {
        fs.write_fbn(a, i, Block::Synthetic(1000 + i)).unwrap();
    }
    fs.set_size(a, 20 * 4096 - 123).unwrap(); // partial tail block

    let sparse = fs
        .create(docs, "sparse.db", FileType::File, Attrs::default())
        .unwrap();
    fs.write_fbn(sparse, 0, Block::Synthetic(7)).unwrap();
    fs.write_fbn(sparse, 100, Block::Synthetic(8)).unwrap();

    let exotic = fs
        .create(deep, "exotic", FileType::File, Attrs::default())
        .unwrap();
    fs.write_fbn(exotic, 0, Block::Synthetic(9)).unwrap();
    fs.set_attrs(
        exotic,
        Attrs {
            perm: 0o600,
            uid: 101,
            gid: 202,
            dos_attrs: 0x26,
            dos_time: 998877,
            dos_name: Some("EXOTIC~1".into()),
            nt_acl: Some(vec![3, 1, 4, 1, 5]),
            ..Attrs::default()
        },
    )
    .unwrap();

    fs.create(src, "empty", FileType::File, Attrs::default())
        .unwrap();
    fs.create(src, "emptydir", FileType::Dir, Attrs::default())
        .unwrap();
}

#[test]
fn full_dump_restore_round_trip() {
    let mut src = fs();
    populate(&mut src);
    let mut tape = drive();
    let mut catalog = DumpCatalog::new();
    let out = dump(&mut src, &mut tape, &mut catalog, &DumpOptions::default()).unwrap();
    assert!(out.files >= 4);
    assert!(out.dirs >= 4);
    assert!(out.tape_bytes > 0);
    // The dump snapshot is cleaned up by default.
    assert!(src.snapshots().is_empty());

    let mut dst = fs();
    let res = restore(&mut dst, &mut tape, "/").unwrap();
    assert_eq!(res.files, out.files);
    assert!(res.warnings.is_empty(), "warnings: {:?}", res.warnings);

    let diffs = compare_subtrees(&mut src, "/", &mut dst, "/").unwrap();
    assert!(diffs.is_empty(), "diffs: {diffs:?}");

    // Exact sizes survive (partial tail block, sparse tail).
    let a = dst.namei("/docs/a.txt").unwrap();
    assert_eq!(dst.stat(a).unwrap().size, 20 * 4096 - 123);
    let sparse = dst.namei("/docs/sparse.db").unwrap();
    assert_eq!(dst.stat(sparse).unwrap().blocks, 2, "holes must stay holes");
}

#[test]
fn incremental_chain_with_deletes_moves_and_changes() {
    let mut src = fs();
    populate(&mut src);
    let mut catalog = DumpCatalog::new();

    // Level 0.
    let mut tape0 = drive();
    dump(&mut src, &mut tape0, &mut catalog, &DumpOptions::default()).unwrap();

    // Mutations: change, create, delete, move.
    let a = src.namei("/docs/a.txt").unwrap();
    src.write_fbn(a, 0, Block::Synthetic(424242)).unwrap();
    let docs = src.namei("/docs").unwrap();
    let fresh = src
        .create(docs, "fresh.log", FileType::File, Attrs::default())
        .unwrap();
    src.write_fbn(fresh, 0, Block::Synthetic(5555)).unwrap();
    src.remove(docs, "sparse.db").unwrap();
    let srcdir = src.namei("/src").unwrap();
    src.rename(srcdir, "empty", docs, "moved-empty").unwrap();

    // Level 1.
    let mut tape1 = drive();
    let out1 = dump(
        &mut src,
        &mut tape1,
        &mut catalog,
        &DumpOptions {
            level: 1,
            ..DumpOptions::default()
        },
    )
    .unwrap();
    // Logical incrementals are file-granular: the whole 20-block a.txt is
    // re-dumped plus the 1-block fresh.log, but nothing else.
    assert_eq!(out1.files, 3, "a.txt, fresh.log and the moved empty file");
    assert_eq!(out1.data_blocks, 21, "whole changed files, nothing more");

    // Restore the chain.
    let mut dst = fs();
    restore(&mut dst, &mut tape0, "/").unwrap();
    let res1 = restore(&mut dst, &mut tape1, "/").unwrap();
    assert!(
        res1.deleted >= 2,
        "expected delete + move-away, got {}",
        res1.deleted
    );

    let diffs = compare_subtrees(&mut src, "/", &mut dst, "/").unwrap();
    assert!(diffs.is_empty(), "diffs after incremental: {diffs:?}");
    assert!(dst.namei("/docs/sparse.db").is_err());
    assert!(dst.namei("/docs/moved-empty").is_ok());
    assert!(dst.namei("/src/empty").is_err());
}

#[test]
fn multi_level_incrementals_follow_the_catalog() {
    let mut src = fs();
    populate(&mut src);
    let mut catalog = DumpCatalog::new();

    let mut tape0 = drive();
    dump(&mut src, &mut tape0, &mut catalog, &DumpOptions::default()).unwrap();

    let docs = src.namei("/docs").unwrap();
    let f1 = src
        .create(docs, "level1-file", FileType::File, Attrs::default())
        .unwrap();
    src.write_fbn(f1, 0, Block::Synthetic(1)).unwrap();
    let mut tape1 = drive();
    dump(
        &mut src,
        &mut tape1,
        &mut catalog,
        &DumpOptions {
            level: 1,
            ..DumpOptions::default()
        },
    )
    .unwrap();

    let f2 = src
        .create(docs, "level2-file", FileType::File, Attrs::default())
        .unwrap();
    src.write_fbn(f2, 0, Block::Synthetic(2)).unwrap();
    let mut tape2 = drive();
    let out2 = dump(
        &mut src,
        &mut tape2,
        &mut catalog,
        &DumpOptions {
            level: 2,
            ..DumpOptions::default()
        },
    )
    .unwrap();
    // Level 2 bases on level 1: level1-file must NOT be re-dumped.
    assert_eq!(out2.files, 1, "level-2 dump should carry only level2-file");

    let mut dst = fs();
    restore(&mut dst, &mut tape0, "/").unwrap();
    restore(&mut dst, &mut tape1, "/").unwrap();
    restore(&mut dst, &mut tape2, "/").unwrap();
    let diffs = compare_subtrees(&mut src, "/", &mut dst, "/").unwrap();
    assert!(diffs.is_empty(), "diffs: {diffs:?}");
}

#[test]
fn subtree_dump_backs_up_less() {
    let mut src = fs();
    populate(&mut src);
    let mut catalog = DumpCatalog::new();
    let mut tape = drive();
    let out = dump(
        &mut src,
        &mut tape,
        &mut catalog,
        &DumpOptions {
            subtree: "/docs".into(),
            ..DumpOptions::default()
        },
    )
    .unwrap();
    assert_eq!(out.files, 2, "only the two docs files");

    // Restore it into a scratch directory elsewhere.
    let mut dst = fs();
    let root = wafl::types::INO_ROOT;
    dst.create(root, "recovered", FileType::Dir, Attrs::default())
        .unwrap();
    restore(&mut dst, &mut tape, "/recovered").unwrap();
    let diffs = compare_subtrees(&mut src, "/docs", &mut dst, "/recovered").unwrap();
    // The subtree root dir's own attrs were applied to /recovered; entries
    // must match exactly.
    assert!(diffs.is_empty(), "diffs: {diffs:?}");
}

#[test]
fn exclusion_filters_skip_files() {
    let mut src = fs();
    populate(&mut src);
    let srcdir = src.namei("/src").unwrap();
    let obj = src
        .create(srcdir, "main.o", FileType::File, Attrs::default())
        .unwrap();
    src.write_fbn(obj, 0, Block::Synthetic(1)).unwrap();
    let core_f = src
        .create(srcdir, "core", FileType::File, Attrs::default())
        .unwrap();
    src.write_fbn(core_f, 0, Block::Synthetic(2)).unwrap();

    let mut catalog = DumpCatalog::new();
    let mut tape = drive();
    dump(
        &mut src,
        &mut tape,
        &mut catalog,
        &DumpOptions {
            exclude_names: vec!["core".into()],
            exclude_suffixes: vec![".o".into()],
            ..DumpOptions::default()
        },
    )
    .unwrap();

    let mut dst = fs();
    let res = restore(&mut dst, &mut tape, "/").unwrap();
    assert!(res.warnings.is_empty(), "warnings: {:?}", res.warnings);
    assert!(dst.namei("/src/main.o").is_err(), "excluded by suffix");
    assert!(dst.namei("/src/core").is_err(), "excluded by name");
    assert!(dst.namei("/src/deep/exotic").is_ok());
}

#[test]
fn dump_preserves_multiprotocol_attrs() {
    let mut src = fs();
    populate(&mut src);
    let mut catalog = DumpCatalog::new();
    let mut tape = drive();
    dump(&mut src, &mut tape, &mut catalog, &DumpOptions::default()).unwrap();
    let mut dst = fs();
    restore(&mut dst, &mut tape, "/").unwrap();
    let ino = dst.namei("/src/deep/exotic").unwrap();
    let attrs = dst.stat(ino).unwrap().attrs;
    assert_eq!(attrs.dos_name.as_deref(), Some("EXOTIC~1"));
    assert_eq!(attrs.dos_attrs, 0x26);
    assert_eq!(attrs.dos_time, 998877);
    assert_eq!(attrs.nt_acl, Some(vec![3, 1, 4, 1, 5]));
}

#[test]
fn dump_with_kept_snapshot_retains_it() {
    let mut src = fs();
    populate(&mut src);
    let mut catalog = DumpCatalog::new();
    let mut tape = drive();
    let out = dump(
        &mut src,
        &mut tape,
        &mut catalog,
        &DumpOptions {
            keep_snapshot: true,
            ..DumpOptions::default()
        },
    )
    .unwrap();
    assert!(src.snapshot_by_name(&out.snapshot_name).is_some());
}

#[test]
fn restore_is_resilient_to_a_corrupt_record() {
    let mut src = fs();
    populate(&mut src);
    let mut catalog = DumpCatalog::new();
    let mut tape = drive();
    let out = dump(&mut src, &mut tape, &mut catalog, &DumpOptions::default()).unwrap();

    // Corrupt one record in the *data* section (past header+maps+dirs).
    let damage_at = 3 + out.dirs + 2; // header + 2 maps + dirs + a file header or data
    assert!(tape.corrupt_record(damage_at));

    let mut dst = fs();
    let res = restore(&mut dst, &mut tape, "/").unwrap();
    // "a minor tape corruption will usually affect only that single file":
    // most files must have been restored despite the damage.
    assert!(!res.warnings.is_empty(), "damage must be reported");
    assert!(
        res.files + 1 >= out.files,
        "at most one file lost: {} of {}",
        res.files,
        out.files
    );
    // And the untouched files verify clean.
    let ino = dst.namei("/src/deep/exotic");
    assert!(ino.is_ok(), "undamaged file must be restored");
}
