//! Single-file ("stupidity recovery") and cross-platform restore tests.

use backup_core::logical::catalog::DumpCatalog;
use backup_core::logical::dump::dump;
use backup_core::logical::dump::DumpOptions;
use backup_core::logical::format::DumpError;
use backup_core::logical::portability::restore_to_foreign;
use backup_core::logical::portability::ForeignNode;
use backup_core::logical::single::restore_single;
use backup_core::logical::single::restore_subtree;
use blockdev::Block;
use blockdev::DiskPerf;
use raid::Volume;
use raid::VolumeGeometry;
use tape::TapeDrive;
use tape::TapePerf;
use wafl::types::Attrs;
use wafl::types::FileType;
use wafl::types::WaflConfig;
use wafl::types::INO_ROOT;
use wafl::Wafl;

fn fs() -> Wafl {
    let vol = Volume::new(VolumeGeometry::uniform(2, 4, 4096, DiskPerf::ideal()));
    Wafl::format(vol, WaflConfig::default()).unwrap()
}

fn drive() -> TapeDrive {
    TapeDrive::new(TapePerf::ideal(), 1 << 30)
}

fn dumped_fs() -> (Wafl, TapeDrive) {
    let mut src = fs();
    let home = src
        .create(INO_ROOT, "home", FileType::Dir, Attrs::default())
        .unwrap();
    let alice = src
        .create(home, "alice", FileType::Dir, Attrs::default())
        .unwrap();
    let bob = src
        .create(home, "bob", FileType::Dir, Attrs::default())
        .unwrap();
    let thesis = src
        .create(alice, "thesis.tex", FileType::File, Attrs::default())
        .unwrap();
    for i in 0..8 {
        src.write_fbn(thesis, i, Block::Synthetic(100 + i)).unwrap();
    }
    src.set_attrs(
        thesis,
        Attrs {
            perm: 0o644,
            uid: 1001,
            dos_name: Some("THESIS~1.TEX".into()),
            nt_acl: Some(vec![5, 5]),
            ..Attrs::default()
        },
    )
    .unwrap();
    let notes = src
        .create(alice, "notes.md", FileType::File, Attrs::default())
        .unwrap();
    src.write_fbn(notes, 0, Block::Synthetic(55)).unwrap();
    let code = src
        .create(bob, "main.rs", FileType::File, Attrs::default())
        .unwrap();
    src.write_fbn(code, 0, Block::Synthetic(66)).unwrap();

    let mut tape = drive();
    let mut catalog = DumpCatalog::new();
    dump(&mut src, &mut tape, &mut catalog, &DumpOptions::default()).unwrap();
    (src, tape)
}

#[test]
fn single_file_restore_recovers_exactly_one_file() {
    let (mut src, mut tape) = dumped_fs();
    // The "accidental deletion".
    let alice = src.namei("/home/alice").unwrap();
    src.remove(alice, "thesis.tex").unwrap();
    assert!(src.namei("/home/alice/thesis.tex").is_err());

    let out = restore_single(&mut src, &mut tape, "/home/alice/thesis.tex", "/home/alice").unwrap();
    assert_eq!(out.files, 1);
    assert_eq!(out.dirs, 0);
    assert_eq!(out.data_blocks, 8);

    let ino = src.namei("/home/alice/thesis.tex").unwrap();
    let st = src.stat(ino).unwrap();
    assert_eq!(st.attrs.uid, 1001);
    assert_eq!(st.attrs.dos_name.as_deref(), Some("THESIS~1.TEX"));
    for i in 0..8 {
        assert!(src
            .read_fbn(ino, i)
            .unwrap()
            .same_content(&Block::Synthetic(100 + i)));
    }
    // Nothing else was touched.
    assert!(src.namei("/home/bob/main.rs").is_ok());
}

#[test]
fn subtree_restore_recovers_a_directory() {
    let (mut src, mut tape) = dumped_fs();
    let root = INO_ROOT;
    src.create(root, "rescue", FileType::Dir, Attrs::default())
        .unwrap();

    let out = restore_subtree(&mut src, &mut tape, "/home/alice", "/rescue").unwrap();
    assert_eq!(out.dirs, 1);
    assert_eq!(out.files, 2);

    let ino = src.namei("/rescue/alice/thesis.tex").unwrap();
    assert!(src
        .read_fbn(ino, 0)
        .unwrap()
        .same_content(&Block::Synthetic(100)));
    assert!(src.namei("/rescue/alice/notes.md").is_ok());
    assert!(src.namei("/rescue/bob").is_err(), "only the subtree");
}

#[test]
fn missing_path_is_reported() {
    let (mut src, mut tape) = dumped_fs();
    let err = restore_single(&mut src, &mut tape, "/home/carol/nothing", "/home").unwrap_err();
    assert!(matches!(err, DumpError::NotInDump { .. }));
}

#[test]
fn cross_restore_preserves_data_drops_foreign_attrs() {
    let (_src, mut tape) = dumped_fs();
    let foreign = restore_to_foreign(&mut tape).unwrap();
    assert_eq!(foreign.files, 3);
    assert_eq!(foreign.root.count_files(), 3);

    // Data integrity across platforms.
    match foreign.root.resolve("home/alice/thesis.tex") {
        Some(ForeignNode::File {
            size,
            blocks,
            perm,
            uid,
            ..
        }) => {
            assert_eq!(*size, 8 * 4096);
            assert_eq!(*perm, 0o644);
            assert_eq!(*uid, 1001);
            for i in 0..8u64 {
                assert!(blocks
                    .get(&i)
                    .expect("block present")
                    .same_content(&Block::Synthetic(100 + i)));
            }
        }
        other => panic!("thesis.tex missing or wrong: {other:?}"),
    }

    // The portability caveat: multiprotocol attributes are dropped loudly.
    assert!(
        foreign
            .warnings
            .iter()
            .any(|w| w.contains("thesis.tex") && w.contains("DOS/NT")),
        "warnings: {:?}",
        foreign.warnings
    );
}

#[test]
fn foreign_tree_resolves_paths() {
    let (_src, mut tape) = dumped_fs();
    let foreign = restore_to_foreign(&mut tape).unwrap();
    assert!(foreign.root.resolve("home/bob/main.rs").is_some());
    assert!(foreign.root.resolve("home/carol").is_none());
    assert!(matches!(
        foreign.root.resolve("home"),
        Some(ForeignNode::Dir { .. })
    ));
}
