//! Replication property tests (paper §6 + the network target).
//!
//! The central property: shipping only the snapshot bit-plane
//! difference A→B over a (chaotic, retried) network link leaves the
//! remote image bit-for-bit equal to a full transfer of the source —
//! across seeds, link speeds, and injected transport faults. The "full
//! transfer" reference is a verbatim block copy of the source volume:
//! exactly what an infinite-bandwidth physical copy would ship.

use backup_core::logical::sync::logical_sync;
use backup_core::physical::dump::image_dump_full;
use backup_core::physical::dump::ImageCheckpoint;
use backup_core::physical::dump::RestartableImageDump;
use backup_core::physical::format::ImageError;
use backup_core::physical::incremental::image_dump_incremental;
use backup_core::physical::mirror::Mirror;
use backup_core::physical::restore::image_restore;
use backup_core::verify::compare_subtrees;
use backup_core::verify::compare_used_blocks;
use blockdev::Block;
use blockdev::DiskPerf;
use net::LinkSpec;
use net::NetTarget;
use nvram::NvScratch;
use raid::Volume;
use raid::VolumeGeometry;
use simkit::faults::FaultSpec;
use simkit::faults::TapeFaults;
use simkit::media::MediaError;
use simkit::meter::Meter;
use simkit::retry::RetryPolicy;
use simkit::rng::SimRng;
use tape::FaultProxy;
use tape::RetryMedia;
use wafl::cost::CostModel;
use wafl::types::Attrs;
use wafl::types::FileType;
use wafl::types::WaflConfig;
use wafl::types::INO_ROOT;
use wafl::Wafl;

fn geometry() -> VolumeGeometry {
    VolumeGeometry::uniform(2, 4, 4096, DiskPerf::ideal())
}

fn fs() -> Wafl {
    Wafl::format(Volume::new(geometry()), WaflConfig::default()).unwrap()
}

fn mount(vol: Volume) -> Wafl {
    Wafl::mount(
        vol,
        nvram::NvramLog::new(32 * 1024 * 1024),
        WaflConfig::default(),
        Meter::new_shared(),
        CostModel::zero(),
    )
    .expect("replica must mount")
}

/// Seeded tree: a directory of files with varying block counts, a
/// symlink, and a hard link.
fn populate(fs: &mut Wafl, rng: &mut SimRng) {
    let d = fs
        .create(INO_ROOT, "data", FileType::Dir, Attrs::default())
        .unwrap();
    for f in 0..12u64 {
        let ino = fs
            .create(d, &format!("file{f}"), FileType::File, Attrs::default())
            .unwrap();
        for b in 0..rng.range(1, 16) {
            fs.write_fbn(ino, b, Block::Synthetic(rng.range(0, u64::MAX)))
                .unwrap();
        }
    }
    fs.create_symlink(d, "link", "file0", Attrs::default())
        .unwrap();
    let f0 = fs.namei("/data/file0").unwrap();
    fs.link(d, "alias0", f0).unwrap();
    fs.cp().unwrap();
}

/// Seeded churn: overwrites, creations, deletions, attribute changes.
fn mutate(fs: &mut Wafl, rng: &mut SimRng) {
    let d = fs.namei("/data").unwrap();
    for i in 0..8u64 {
        match rng.range(0, 4) {
            0 => {
                let f = rng.range(0, 12);
                if let Ok(ino) = fs.namei(&format!("/data/file{f}")) {
                    fs.write_fbn(
                        ino,
                        rng.range(0, 16),
                        Block::Synthetic(rng.range(0, u64::MAX)),
                    )
                    .unwrap();
                }
            }
            1 => {
                let ino = fs
                    .create(d, &format!("new{i}"), FileType::File, Attrs::default())
                    .unwrap();
                fs.write_fbn(ino, 0, Block::Synthetic(rng.range(0, u64::MAX)))
                    .unwrap();
            }
            2 => {
                let f = rng.range(1, 12);
                let name = format!("file{f}");
                if fs.namei(&format!("/data/{name}")).is_ok() {
                    fs.remove(d, &name).unwrap();
                }
            }
            _ => {
                let f = rng.range(0, 12);
                if let Ok(ino) = fs.namei(&format!("/data/file{f}")) {
                    let mut attrs = fs.stat(ino).unwrap().attrs;
                    attrs.perm = 0o600 + rng.range(0, 8) as u16;
                    fs.set_attrs(ino, attrs).unwrap();
                }
            }
        }
    }
    fs.cp().unwrap();
}

/// The fault matrix: a clean link plus two transient-chaos profiles the
/// retry layer must absorb without changing a single replicated byte.
fn fault_specs() -> Vec<TapeFaults> {
    vec![
        TapeFaults::default(),
        TapeFaults {
            media_soft: 0.05,
            ..TapeFaults::default()
        },
        TapeFaults {
            media_soft: 0.02,
            drive_offline: 0.01,
            offline_ops: 3,
            stacker_jam: 0.05,
            ..TapeFaults::default()
        },
    ]
}

/// A retried, fault-injected network channel.
fn chaos_link(spec: &TapeFaults, seed: u64) -> RetryMedia<FaultProxy<NetTarget>> {
    RetryMedia::new(
        FaultProxy::new(
            NetTarget::new(LinkSpec::mbit100()),
            spec,
            SimRng::seed_from_u64(seed),
        ),
        RetryPolicy::media_default(),
    )
}

/// Bit-for-bit comparison of two remote images over the source's used
/// set (free blocks are never shipped, so they are out of scope).
fn diff_used(src: &mut Wafl, a: &mut Volume, b: &mut Volume) -> Vec<u64> {
    (0..src.blkmap().nblocks())
        .filter(|&bno| !src.blkmap().is_free(bno))
        .filter(|&bno| {
            !a.read_block(bno)
                .unwrap()
                .same_content(&b.read_block(bno).unwrap())
        })
        .collect()
}

#[test]
fn bit_plane_diff_replication_equals_full_transfer() {
    for seed in [1u64, 7, 42] {
        for (si, spec) in fault_specs().iter().enumerate() {
            let mut rng = SimRng::seed_from_u64(seed);
            let mut src = fs();
            populate(&mut src, &mut rng);

            let meter = Meter::new_shared();
            let costs = CostModel::zero();
            let mut remote = Volume::new(geometry());

            // Full transfer at snapshot A over the chaotic link.
            let mut chan_a = chaos_link(spec, seed * 31 + si as u64);
            let full_out = image_dump_full(&mut src, &mut chan_a, "A").unwrap();
            image_restore(&mut chan_a, &mut remote, &meter, &costs).unwrap();

            // Churn, then ship only the bit-plane difference B − A.
            mutate(&mut src, &mut rng);
            let mut chan_b = chaos_link(spec, seed * 131 + si as u64);
            let incr_out = image_dump_incremental(&mut src, &mut chan_b, "A", "B").unwrap();
            assert!(
                incr_out.blocks < full_out.blocks,
                "seed {seed} spec {si}: diff ({}) should undercut full ({})",
                incr_out.blocks,
                full_out.blocks
            );

            // The full-transfer reference, captured at exactly the state
            // the incremental shipped: copy the source image outright.
            let mut full = Volume::new(geometry());
            for bno in 0..src.volume_mut().capacity() {
                let b = src.volume_mut().read_block(bno).unwrap();
                full.write_block(bno, b).unwrap();
            }
            full.sync().unwrap();

            image_restore(&mut chan_b, &mut remote, &meter, &costs).unwrap();

            let mism = diff_used(&mut src, &mut remote, &mut full);
            assert!(
                mism.is_empty(),
                "seed {seed} spec {si}: diff-replica deviates from full transfer at {mism:?}"
            );
            let mism = compare_used_blocks(&mut src, &mut remote).unwrap();
            assert!(
                mism.is_empty(),
                "seed {seed} spec {si}: replica deviates from source at {mism:?}"
            );

            // And the replica mounts as an identical file system.
            let mut replica = mount(remote);
            let diffs = compare_subtrees(&mut src, "/", &mut replica, "/").unwrap();
            assert!(diffs.is_empty(), "seed {seed} spec {si}: {diffs:?}");
        }
    }
}

/// The paper's NVRAM restart discipline carries over to the network
/// target unchanged: a hard link failure mid-replication leaves a
/// checkpoint in stable scratch, and after the link comes back the job
/// resumes from it — without engine changes and with a byte-identical
/// remote image.
#[test]
fn interrupted_net_replication_resumes_from_nvram_checkpoint() {
    let mut rng = SimRng::seed_from_u64(17);
    let mut src = fs();
    populate(&mut src, &mut rng);
    let total_used: u64 = (0..src.blkmap().nblocks())
        .filter(|&b| !src.blkmap().is_free(b))
        .count() as u64;

    // A permanent link failure mid-stream kills the first attempt.
    let spec = FaultSpec::builder().tape_hard_write_record(6).build();
    let mut media = FaultProxy::new(
        NetTarget::new(LinkSpec::mbit100()),
        &spec.tape,
        SimRng::seed_from_u64(3),
    );
    let mut scratch = NvScratch::new();
    let job = RestartableImageDump::new("net.ckpt").checkpoint_every(2);
    let err = job.run(&mut src, &mut media, &mut scratch).unwrap_err();
    assert!(
        matches!(err, ImageError::Media(MediaError::Hard { .. })),
        "typed permanent media error, got {err:?}"
    );

    // The checkpoint survived the outage and points mid-stream.
    let c = ImageCheckpoint::from_bytes(scratch.load(job.scratch_key()).unwrap()).unwrap();
    assert!(c.next_block > 0 && c.next_block < total_used);

    // The link comes back; the resume finishes and retires the
    // checkpoint.
    media.disarm();
    let out = job.run(&mut src, &mut media, &mut scratch).unwrap();
    assert!(out.resumed);
    assert!(
        out.blocks < total_used,
        "resume skipped the finished prefix"
    );
    assert!(
        scratch.load(job.scratch_key()).is_none(),
        "checkpoint retires on success"
    );

    // The resumed stream restores a byte-identical remote image.
    let mut remote = Volume::new(geometry());
    image_restore(
        &mut media,
        &mut remote,
        &Meter::new_shared(),
        &CostModel::zero(),
    )
    .unwrap();
    let mism = compare_used_blocks(&mut src, &mut remote).unwrap();
    assert!(mism.is_empty(), "replica deviates at {mism:?}");
}

#[test]
fn mirror_replicates_over_chaotic_links() {
    for seed in [5u64, 23] {
        for (si, spec) in fault_specs().iter().enumerate() {
            let mut rng = SimRng::seed_from_u64(seed);
            let mut src = fs();
            populate(&mut src, &mut rng);

            let meter = Meter::new_shared();
            let costs = CostModel::zero();
            let mut remote = Volume::new(geometry());
            let mut channel = chaos_link(spec, seed * 71 + si as u64);
            let mut mirror = Mirror::new();

            let first = mirror
                .sync_via(&mut src, &mut remote, &meter, &costs, &mut channel)
                .unwrap();
            assert!(first.initial);

            mutate(&mut src, &mut rng);
            let second = mirror
                .sync_via(&mut src, &mut remote, &meter, &costs, &mut channel)
                .unwrap();
            assert!(!second.initial);
            assert!(
                second.bytes < first.bytes,
                "seed {seed} spec {si}: diff ({}) should undercut full ({})",
                second.bytes,
                first.bytes
            );
            // Anchor rotation survives the chaos: only the newest remains.
            assert!(src.snapshot_by_name("mirror.1").is_none());
            assert!(src.snapshot_by_name("mirror.2").is_some());

            let mut replica = mount(remote);
            let diffs = compare_subtrees(&mut src, "/", &mut replica, "/").unwrap();
            assert!(diffs.is_empty(), "seed {seed} spec {si}: {diffs:?}");
        }
    }
}

#[test]
fn logical_sync_converges_over_chaotic_links() {
    for seed in [3u64, 11, 99] {
        for (si, spec) in fault_specs().iter().enumerate() {
            let mut rng = SimRng::seed_from_u64(seed);
            let mut src = fs();
            let mut dst = fs();
            populate(&mut src, &mut rng);

            let mut channel = chaos_link(spec, seed * 37 + si as u64);
            let first = logical_sync(&mut src, &mut dst, &mut channel).unwrap();
            assert!(first.files_sent > 0);

            mutate(&mut src, &mut rng);
            let second = logical_sync(&mut src, &mut dst, &mut channel).unwrap();
            // Rsync economics: the second pass ships only the delta.
            assert!(
                second.bytes_sent < first.bytes_sent,
                "seed {seed} spec {si}: delta {} vs full {}",
                second.bytes_sent,
                first.bytes_sent
            );
            assert!(second.unchanged > 0, "seed {seed} spec {si}");

            let diffs = compare_subtrees(&mut src, "/", &mut dst, "/").unwrap();
            assert!(diffs.is_empty(), "seed {seed} spec {si}: {diffs:?}");

            // A third pass over an already-converged pair ships headers
            // for nothing: zero files, zero blocks.
            let third = logical_sync(&mut src, &mut dst, &mut channel).unwrap();
            assert_eq!(third.files_sent, 0, "seed {seed} spec {si}");
            assert_eq!(third.blocks_sent, 0, "seed {seed} spec {si}");
        }
    }
}
