//! Randomized tests: the dump format round-trips arbitrary records, and —
//! the strongest property in the suite — a dump/restore cycle of an
//! arbitrary random file tree reproduces it exactly. Inputs come from a
//! deterministic seeded generator.

use backup_core::logical::catalog::DumpCatalog;
use backup_core::logical::dump::dump;
use backup_core::logical::dump::DumpOptions;
use backup_core::logical::format::DumpRecord;
use backup_core::logical::format::WhichMap;
use backup_core::logical::restore::restore;
use backup_core::verify::compare_subtrees;
use blockdev::Block;
use blockdev::DiskPerf;
use raid::Volume;
use raid::VolumeGeometry;
use simkit::rng::SimRng;
use tape::TapeDrive;
use tape::TapePerf;
use wafl::types::Attrs;
use wafl::types::FileType;
use wafl::types::WaflConfig;
use wafl::types::INO_ROOT;
use wafl::Wafl;

/// A random string of `len` characters drawn from `alphabet`.
fn arb_string(rng: &mut SimRng, alphabet: &[u8], lo: u64, hi: u64) -> String {
    let len = rng.range(lo, hi);
    (0..len)
        .map(|_| alphabet[rng.range(0, alphabet.len() as u64) as usize] as char)
        .collect()
}

fn arb_attrs(rng: &mut SimRng) -> Attrs {
    Attrs {
        perm: rng.next_u64() as u16,
        uid: rng.next_u64() as u32,
        dos_name: if rng.chance(0.5) {
            Some(arb_string(rng, b"ABCDEFGHIJKLMNOPQRSTUVWXYZ~.", 1, 9))
        } else {
            None
        },
        ..Attrs::default()
    }
}

fn arb_record(rng: &mut SimRng) -> DumpRecord {
    match rng.range(0, 6) {
        0 => DumpRecord::Tape {
            level: (rng.next_u64() as u8) % 10,
            dump_date: rng.next_u64(),
            base_date: rng.next_u64(),
            volume: arb_string(rng, b"abcdefghijklmnopqrstuvwxyz", 1, 11),
            root_ino: rng.range(2, 1000) as u32,
            max_ino: rng.range(3, 5000) as u32,
        },
        1 => DumpRecord::Bits {
            which: WhichMap::Used,
            bits: (0..rng.range(0, 64))
                .map(|_| rng.next_u64() as u8)
                .collect(),
        },
        2 => DumpRecord::Dir {
            ino: rng.range(2, 1000) as u32,
            attrs: arb_attrs(rng),
            entries: (0..rng.range(0, 30))
                .map(|_| backup_core::logical::format::DirEntry {
                    name: arb_string(rng, b"abcdefghijklmnopqrstuvwxyz", 1, 21),
                    ino: rng.range(3, 10000) as u32,
                    kind: match rng.range(0, 3) {
                        0 => FileType::File,
                        1 => FileType::Dir,
                        _ => FileType::Symlink,
                    },
                })
                .collect(),
        },
        3 => DumpRecord::Inode {
            ino: rng.range(3, 10000) as u32,
            size: rng.next_u64(),
            nblocks: rng.range(0, 100),
            kind: if rng.chance(0.5) {
                FileType::Symlink
            } else {
                FileType::File
            },
            attrs: arb_attrs(rng),
        },
        4 => {
            let n = rng.range(1, 16);
            let fbns: Vec<u64> = (0..n).map(|_| rng.range(0, 5000)).collect();
            let blocks = (0..n).map(|_| Block::Synthetic(rng.next_u64())).collect();
            DumpRecord::Data {
                ino: rng.range(3, 10000) as u32,
                fbns,
                blocks,
            }
        }
        _ => DumpRecord::End {
            files: rng.next_u64(),
            dirs: rng.next_u64(),
            data_blocks: rng.next_u64(),
        },
    }
}

#[test]
fn any_record_round_trips() {
    let mut rng = SimRng::seed_from_u64(0xf0f0_0001);
    for case in 0..512 {
        let rec = arb_record(&mut rng);
        let parsed = DumpRecord::parse(&rec.to_record()).expect("parse");
        assert_eq!(parsed, rec, "case {case}");
    }
}

/// A recipe for one file in the random tree: (directory path index, blocks
/// with seeds, trailing-size slack).
type FileSpec = (u8, Vec<(u8, u64)>, u8);

fn build_tree(fs: &mut Wafl, dirs: &[String], files: &[FileSpec]) -> u64 {
    let mut dir_inos = vec![INO_ROOT];
    for name in dirs {
        let parent = dir_inos[dir_inos.len() / 2];
        if let Ok(ino) = fs.create(parent, name, FileType::Dir, Attrs::default()) {
            dir_inos.push(ino);
        }
    }
    let mut created = 0;
    for (i, (dir_sel, blocks, slack)) in files.iter().enumerate() {
        let parent = dir_inos[*dir_sel as usize % dir_inos.len()];
        let name = format!("file{i}");
        let Ok(ino) = fs.create(parent, &name, FileType::File, Attrs::default()) else {
            continue;
        };
        created += 1;
        let mut max_fbn = 0;
        for (fbn, seed) in blocks {
            let fbn = *fbn as u64;
            fs.write_fbn(ino, fbn, Block::Synthetic(*seed)).unwrap();
            max_fbn = max_fbn.max(fbn);
        }
        if !blocks.is_empty() && *slack > 0 {
            // Exact size somewhere in the final block.
            let size = max_fbn * 4096 + 1 + (*slack as u64 * 15);
            let size = size.min((max_fbn + 1) * 4096);
            fs.set_size(ino, size).unwrap();
        }
    }
    created
}

/// Dump → restore of an arbitrary random tree is an identity.
#[test]
fn dump_restore_is_identity_on_random_trees() {
    let mut rng = SimRng::seed_from_u64(0xf0f0_0002);
    for case in 0..24 {
        let dirs: Vec<String> = (0..rng.range(0, 8))
            .map(|_| arb_string(&mut rng, b"abcdefghijklmnopqrstuvwxyz", 1, 13))
            .collect();
        let files: Vec<FileSpec> = (0..rng.range(0, 25))
            .map(|_| {
                let dir_sel = rng.next_u64() as u8;
                let blocks = (0..rng.range(0, 6))
                    .map(|_| (rng.range(0, 40) as u8, rng.next_u64()))
                    .collect();
                (dir_sel, blocks, rng.next_u64() as u8)
            })
            .collect();

        let geo = VolumeGeometry::uniform(1, 4, 4096, DiskPerf::ideal());
        let mut src = Wafl::format(Volume::new(geo.clone()), WaflConfig::default()).unwrap();
        build_tree(&mut src, &dirs, &files);

        let mut tape = TapeDrive::new(TapePerf::ideal(), 1 << 30);
        let mut catalog = DumpCatalog::new();
        dump(&mut src, &mut tape, &mut catalog, &DumpOptions::default()).unwrap();

        let mut dst = Wafl::format(Volume::new(geo), WaflConfig::default()).unwrap();
        let out = restore(&mut dst, &mut tape, "/").unwrap();
        assert!(
            out.warnings.is_empty(),
            "case {case}: warnings: {:?}",
            out.warnings
        );

        let diffs = compare_subtrees(&mut src, "/", &mut dst, "/").unwrap();
        assert!(diffs.is_empty(), "case {case}: diffs: {diffs:?}");
    }
}
