//! Property tests: the dump format round-trips arbitrary records, and —
//! the strongest property in the suite — a dump/restore cycle of an
//! arbitrary random file tree reproduces it exactly.

use backup_core::logical::catalog::DumpCatalog;
use backup_core::logical::dump::dump;
use backup_core::logical::dump::DumpOptions;
use backup_core::logical::format::DumpRecord;
use backup_core::logical::format::WhichMap;
use backup_core::logical::restore::restore;
use backup_core::verify::compare_subtrees;
use blockdev::Block;
use blockdev::DiskPerf;
use proptest::prelude::*;
use raid::Volume;
use raid::VolumeGeometry;
use tape::TapeDrive;
use tape::TapePerf;
use wafl::types::Attrs;
use wafl::types::FileType;
use wafl::types::WaflConfig;
use wafl::types::INO_ROOT;
use wafl::Wafl;

fn arb_attrs() -> impl Strategy<Value = Attrs> {
    (any::<u16>(), any::<u32>(), proptest::option::of("[A-Z~.]{1,8}"))
        .prop_map(|(perm, uid, dos_name)| Attrs {
            perm,
            uid,
            dos_name,
            ..Attrs::default()
        })
}

fn arb_record() -> impl Strategy<Value = DumpRecord> {
    prop_oneof![
        (any::<u8>(), any::<u64>(), any::<u64>(), "[a-z]{1,10}", 2u32..1000, 3u32..5000).prop_map(
            |(level, dump_date, base_date, volume, root_ino, max_ino)| DumpRecord::Tape {
                level: level % 10,
                dump_date,
                base_date,
                volume,
                root_ino,
                max_ino,
            }
        ),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(|bits| DumpRecord::Bits {
            which: WhichMap::Used,
            bits,
        }),
        (
            2u32..1000,
            arb_attrs(),
            proptest::collection::vec(("[a-z]{1,20}", 3u32..10000, 0u8..3), 0..30),
        )
            .prop_map(|(ino, attrs, raw)| DumpRecord::Dir {
                ino,
                attrs,
                entries: raw
                    .into_iter()
                    .map(|(name, child, k)| backup_core::logical::format::DirEntry {
                        name,
                        ino: child,
                        kind: match k {
                            0 => FileType::File,
                            1 => FileType::Dir,
                            _ => FileType::Symlink,
                        },
                    })
                    .collect(),
            }),
        (3u32..10000, any::<u64>(), 0u64..100, arb_attrs(), any::<bool>()).prop_map(
            |(ino, size, nblocks, attrs, symlink)| DumpRecord::Inode {
                ino,
                size,
                nblocks,
                kind: if symlink { FileType::Symlink } else { FileType::File },
                attrs,
            }
        ),
        (3u32..10000, proptest::collection::vec((0u64..5000, any::<u64>()), 1..16)).prop_map(
            |(ino, pairs)| {
                let (fbns, seeds): (Vec<u64>, Vec<u64>) = pairs.into_iter().unzip();
                DumpRecord::Data {
                    ino,
                    fbns,
                    blocks: seeds.into_iter().map(Block::Synthetic).collect(),
                }
            }
        ),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(files, dirs, data_blocks)| {
            DumpRecord::End {
                files,
                dirs,
                data_blocks,
            }
        }),
    ]
}

proptest! {
    #[test]
    fn any_record_round_trips(rec in arb_record()) {
        let parsed = DumpRecord::parse(&rec.to_record()).expect("parse");
        prop_assert_eq!(parsed, rec);
    }
}

/// A recipe for one file in the random tree: (directory path index, blocks
/// with seeds, trailing-size slack).
type FileSpec = (u8, Vec<(u8, u64)>, u8);

fn build_tree(fs: &mut Wafl, dirs: &[String], files: &[FileSpec]) -> u64 {
    let mut dir_inos = vec![INO_ROOT];
    for name in dirs {
        let parent = dir_inos[dir_inos.len() / 2];
        if let Ok(ino) = fs.create(parent, name, FileType::Dir, Attrs::default()) {
            dir_inos.push(ino);
        }
    }
    let mut created = 0;
    for (i, (dir_sel, blocks, slack)) in files.iter().enumerate() {
        let parent = dir_inos[*dir_sel as usize % dir_inos.len()];
        let name = format!("file{i}");
        let Ok(ino) = fs.create(parent, &name, FileType::File, Attrs::default()) else {
            continue;
        };
        created += 1;
        let mut max_fbn = 0;
        for (fbn, seed) in blocks {
            let fbn = *fbn as u64;
            fs.write_fbn(ino, fbn, Block::Synthetic(*seed)).unwrap();
            max_fbn = max_fbn.max(fbn);
        }
        if !blocks.is_empty() && *slack > 0 {
            // Exact size somewhere in the final block.
            let size = max_fbn * 4096 + 1 + (*slack as u64 * 15);
            let size = size.min((max_fbn + 1) * 4096);
            fs.set_size(ino, size).unwrap();
        }
    }
    created
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// Dump → restore of an arbitrary random tree is an identity.
    #[test]
    fn dump_restore_is_identity_on_random_trees(
        dirs in proptest::collection::vec("[a-z]{1,12}", 0..8),
        files in proptest::collection::vec(
            (any::<u8>(), proptest::collection::vec((0u8..40, any::<u64>()), 0..6), any::<u8>()),
            0..25,
        ),
    ) {
        let geo = VolumeGeometry::uniform(1, 4, 4096, DiskPerf::ideal());
        let mut src = Wafl::format(Volume::new(geo.clone()), WaflConfig::default()).unwrap();
        build_tree(&mut src, &dirs, &files);

        let mut tape = TapeDrive::new(TapePerf::ideal(), 1 << 30);
        let mut catalog = DumpCatalog::new();
        dump(&mut src, &mut tape, &mut catalog, &DumpOptions::default()).unwrap();

        let mut dst = Wafl::format(Volume::new(geo), WaflConfig::default()).unwrap();
        let out = restore(&mut dst, &mut tape, "/").unwrap();
        prop_assert!(out.warnings.is_empty(), "warnings: {:?}", out.warnings);

        let diffs = compare_subtrees(&mut src, "/", &mut dst, "/").unwrap();
        prop_assert!(diffs.is_empty(), "diffs: {diffs:?}");
    }
}
