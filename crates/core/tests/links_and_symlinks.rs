//! Hard links and symbolic links through both backup strategies — the
//! inode-based format's home turf ("the dump format is inode based, which
//! is the fundamental difference between dump and tar or cpio").

use backup_core::logical::catalog::DumpCatalog;
use backup_core::logical::dump::dump;
use backup_core::logical::dump::DumpOptions;
use backup_core::logical::portability::restore_to_foreign;
use backup_core::logical::restore::restore;
use backup_core::logical::single::restore_subtree;
use backup_core::physical::dump::image_dump_full;
use backup_core::physical::restore::image_restore;
use backup_core::verify::compare_trees;
use blockdev::Block;
use blockdev::DiskPerf;
use raid::Volume;
use raid::VolumeGeometry;
use simkit::meter::Meter;
use tape::TapeDrive;
use tape::TapePerf;
use wafl::cost::CostModel;
use wafl::types::Attrs;
use wafl::types::FileType;
use wafl::types::WaflConfig;
use wafl::types::INO_ROOT;
use wafl::Wafl;

fn geometry() -> VolumeGeometry {
    VolumeGeometry::uniform(1, 4, 4096, DiskPerf::ideal())
}

/// A tree with a hard-linked file (two names, one in a subdir) and two
/// symlinks (one dangling).
fn populated() -> Wafl {
    let mut fs = Wafl::format(Volume::new(geometry()), WaflConfig::default()).unwrap();
    let d = fs
        .create(INO_ROOT, "d", FileType::Dir, Attrs::default())
        .unwrap();
    let shared = fs
        .create(INO_ROOT, "shared", FileType::File, Attrs::default())
        .unwrap();
    for b in 0..6 {
        fs.write_fbn(shared, b, Block::Synthetic(500 + b)).unwrap();
    }
    fs.link(d, "alias", shared).unwrap();
    fs.create_symlink(INO_ROOT, "ptr", "/d/alias", Attrs::default())
        .unwrap();
    fs.create_symlink(d, "dangling", "/nowhere", Attrs::default())
        .unwrap();
    fs.cp().unwrap();
    fs
}

#[test]
fn wafl_link_semantics() {
    let mut fs = populated();
    let shared = fs.namei("/shared").unwrap();
    let alias = fs.namei("/d/alias").unwrap();
    assert_eq!(shared, alias, "two names, one inode");
    assert_eq!(fs.stat(shared).unwrap().nlink, 2);

    // Writes through one name are visible through the other.
    fs.write_fbn(alias, 0, Block::Synthetic(9999)).unwrap();
    assert!(fs
        .read_fbn(shared, 0)
        .unwrap()
        .same_content(&Block::Synthetic(9999)));

    // Removing one name keeps the data; removing the last frees it.
    let free_before = fs.free_blocks();
    fs.remove(INO_ROOT, "shared").unwrap();
    fs.cp().unwrap();
    assert_eq!(fs.stat(alias).unwrap().nlink, 1);
    assert!(fs
        .read_fbn(alias, 1)
        .unwrap()
        .same_content(&Block::Synthetic(501)));
    let d = fs.namei("/d").unwrap();
    fs.remove(d, "alias").unwrap();
    fs.cp().unwrap();
    assert!(
        fs.free_blocks() > free_before,
        "last unlink frees the blocks"
    );

    // Consistency holds throughout.
    let report = wafl::check::check(&fs).unwrap();
    assert!(report.is_clean(), "{:?}", report.problems);
}

#[test]
fn wafl_symlink_semantics() {
    let mut fs = populated();
    let ptr = fs.namei("/ptr").unwrap();
    assert_eq!(fs.stat(ptr).unwrap().ftype, FileType::Symlink);
    assert_eq!(fs.readlink(ptr).unwrap(), "/d/alias");
    // readlink on a non-symlink is a type error.
    let shared = fs.namei("/shared").unwrap();
    assert!(fs.readlink(shared).is_err());
    // Symlinks survive a crash.
    let (vol, nv) = fs.crash();
    let mut fs = Wafl::mount(
        vol,
        nv,
        WaflConfig::default(),
        Meter::new_shared(),
        CostModel::zero(),
    )
    .unwrap();
    let ptr = fs.namei("/ptr").unwrap();
    assert_eq!(fs.readlink(ptr).unwrap(), "/d/alias");
}

#[test]
fn logical_round_trip_preserves_links_and_symlinks() {
    let mut src = populated();
    let mut tape = TapeDrive::new(TapePerf::ideal(), u64::MAX);
    let mut catalog = DumpCatalog::new();
    let out = dump(&mut src, &mut tape, &mut catalog, &DumpOptions::default()).unwrap();
    // The hard-linked file is dumped once; symlinks are dumped as inodes.
    assert_eq!(out.files, 3, "shared (once) + 2 symlinks");

    let mut dst = Wafl::format(Volume::new(geometry()), WaflConfig::default()).unwrap();
    let res = restore(&mut dst, &mut tape, "/").unwrap();
    assert!(res.warnings.is_empty(), "{:?}", res.warnings);

    let diffs = compare_trees(&mut src, &mut dst).unwrap();
    assert!(diffs.is_empty(), "diffs: {diffs:?}");
    // The link identity (not just content) is preserved.
    assert_eq!(
        dst.namei("/shared").unwrap(),
        dst.namei("/d/alias").unwrap()
    );
    let ptr = dst.namei("/ptr").unwrap();
    assert_eq!(dst.readlink(ptr).unwrap(), "/d/alias");
    let dang = dst.namei("/d/dangling").unwrap();
    assert_eq!(dst.readlink(dang).unwrap(), "/nowhere");
}

#[test]
fn physical_round_trip_preserves_links_and_symlinks() {
    let mut src = populated();
    let mut tape = TapeDrive::new(TapePerf::ideal(), u64::MAX);
    image_dump_full(&mut src, &mut tape, "snap").unwrap();
    let meter = Meter::new_shared();
    let mut raw = Volume::new(geometry());
    image_restore(&mut tape, &mut raw, &meter, &CostModel::zero()).unwrap();
    let mut dst = Wafl::mount(
        raw,
        nvram::NvramLog::new(32 << 20),
        WaflConfig::default(),
        Meter::new_shared(),
        CostModel::zero(),
    )
    .unwrap();
    assert_eq!(
        dst.namei("/shared").unwrap(),
        dst.namei("/d/alias").unwrap()
    );
    let ptr = dst.namei("/ptr").unwrap();
    assert_eq!(dst.readlink(ptr).unwrap(), "/d/alias");
    let diffs = compare_trees(&mut src, &mut dst).unwrap();
    assert!(diffs.is_empty(), "diffs: {diffs:?}");
}

#[test]
fn subtree_restore_relinks_within_scope() {
    let mut src = populated();
    // Add a second link *inside* /d so the subtree carries both names.
    let d = src.namei("/d").unwrap();
    let alias = src.namei("/d/alias").unwrap();
    src.link(d, "alias2", alias).unwrap();
    let mut tape = TapeDrive::new(TapePerf::ideal(), u64::MAX);
    let mut catalog = DumpCatalog::new();
    dump(&mut src, &mut tape, &mut catalog, &DumpOptions::default()).unwrap();

    let root = INO_ROOT;
    src.create(root, "rescue", FileType::Dir, Attrs::default())
        .unwrap();
    restore_subtree(&mut src, &mut tape, "/d", "/rescue").unwrap();
    let a = src.namei("/rescue/d/alias").unwrap();
    let b = src.namei("/rescue/d/alias2").unwrap();
    assert_eq!(a, b, "links inside the subtree are reconnected");
    let dang = src.namei("/rescue/d/dangling").unwrap();
    assert_eq!(src.readlink(dang).unwrap(), "/nowhere");
}

#[test]
fn foreign_restore_flattens_links_with_warning() {
    let mut src = populated();
    let mut tape = TapeDrive::new(TapePerf::ideal(), u64::MAX);
    let mut catalog = DumpCatalog::new();
    dump(&mut src, &mut tape, &mut catalog, &DumpOptions::default()).unwrap();
    let foreign = restore_to_foreign(&mut tape).unwrap();
    assert!(
        foreign.warnings.iter().any(|w| w.contains("hard links")),
        "{:?}",
        foreign.warnings
    );
    // Both names exist as (independent) files with the same content.
    assert!(foreign.root.resolve("shared").is_some());
    assert!(foreign.root.resolve("d/alias").is_some());
}

#[test]
fn incremental_dump_carries_new_links() {
    let mut src = populated();
    let mut tape0 = TapeDrive::new(TapePerf::ideal(), u64::MAX);
    let mut catalog = DumpCatalog::new();
    dump(&mut src, &mut tape0, &mut catalog, &DumpOptions::default()).unwrap();

    // A new link to an unchanged file: the inode's ctime bumps, so the
    // file is re-dumped and the new name appears.
    let shared = src.namei("/shared").unwrap();
    src.link(INO_ROOT, "third-name", shared).unwrap();
    let mut tape1 = TapeDrive::new(TapePerf::ideal(), u64::MAX);
    dump(
        &mut src,
        &mut tape1,
        &mut catalog,
        &DumpOptions {
            level: 1,
            ..DumpOptions::default()
        },
    )
    .unwrap();

    let mut dst = Wafl::format(Volume::new(geometry()), WaflConfig::default()).unwrap();
    restore(&mut dst, &mut tape0, "/").unwrap();
    restore(&mut dst, &mut tape1, "/").unwrap();
    let diffs = compare_trees(&mut src, &mut dst).unwrap();
    assert!(diffs.is_empty(), "diffs: {diffs:?}");
    assert_eq!(
        dst.namei("/third-name").unwrap(),
        dst.namei("/shared").unwrap()
    );
}

#[test]
fn link_restrictions_are_enforced() {
    let mut fs = Wafl::format(Volume::new(geometry()), WaflConfig::default()).unwrap();
    let d = fs
        .create(INO_ROOT, "d", FileType::Dir, Attrs::default())
        .unwrap();
    // No hard links to directories.
    assert!(fs.link(INO_ROOT, "dirlink", d).is_err());
    // No cross-qtree links.
    let q = fs.create_qtree("q", 0).unwrap();
    let _ = q;
    let qroot = fs.namei("/q").unwrap();
    let f = fs
        .create(INO_ROOT, "plain", FileType::File, Attrs::default())
        .unwrap();
    assert!(fs.link(qroot, "cross", f).is_err());
    // Symlink targets are capped at a block.
    let long = "x".repeat(5000);
    assert!(fs
        .create_symlink(INO_ROOT, "toolong", &long, Attrs::default())
        .is_err());
}
