//! End-to-end image dump/restore tests (paper §4).

use backup_core::physical::dump::image_dump_full;
use backup_core::physical::format::ImageError;
use backup_core::physical::incremental::image_dump_incremental;
use backup_core::physical::mirror::Mirror;
use backup_core::physical::restore::image_restore;
use backup_core::verify::compare_subtrees;
use backup_core::verify::compare_used_blocks;
use blockdev::Block;
use blockdev::DiskPerf;
use raid::Volume;
use raid::VolumeGeometry;
use simkit::meter::Meter;
use tape::TapeDrive;
use tape::TapePerf;
use wafl::cost::CostModel;
use wafl::types::Attrs;
use wafl::types::FileType;
use wafl::types::WaflConfig;
use wafl::types::INO_ROOT;
use wafl::Wafl;

fn geometry() -> VolumeGeometry {
    VolumeGeometry::uniform(2, 4, 4096, DiskPerf::ideal())
}

fn fs() -> Wafl {
    Wafl::format(Volume::new(geometry()), WaflConfig::default()).unwrap()
}

fn drive() -> TapeDrive {
    TapeDrive::new(TapePerf::ideal(), 1 << 30)
}

fn populate(fs: &mut Wafl) {
    let d = fs
        .create(INO_ROOT, "data", FileType::Dir, Attrs::default())
        .unwrap();
    for f in 0..10u64 {
        let ino = fs
            .create(d, &format!("file{f}"), FileType::File, Attrs::default())
            .unwrap();
        for b in 0..15 {
            fs.write_fbn(ino, b, Block::Synthetic(f * 1000 + b))
                .unwrap();
        }
    }
    fs.set_attrs(
        fs.namei("/data/file3").unwrap(),
        Attrs {
            dos_name: Some("FILE3~1".into()),
            nt_acl: Some(vec![1, 2]),
            ..Attrs::default()
        },
    )
    .unwrap();
}

fn mount(vol: Volume) -> Wafl {
    Wafl::mount(
        vol,
        nvram::NvramLog::new(32 * 1024 * 1024),
        WaflConfig::default(),
        Meter::new_shared(),
        CostModel::zero(),
    )
    .expect("restored volume must mount")
}

#[test]
fn full_image_round_trip_is_block_identical() {
    let mut src = fs();
    populate(&mut src);
    let mut tape = drive();
    let out = image_dump_full(&mut src, &mut tape, "weekly.0").unwrap();
    assert!(
        out.blocks > 150,
        "expected all used blocks, got {}",
        out.blocks
    );

    let meter = Meter::new_shared();
    let mut target = Volume::new(geometry());
    let res = image_restore(&mut tape, &mut target, &meter, &CostModel::zero()).unwrap();
    assert_eq!(res.blocks, out.blocks);
    assert!(!res.incremental);

    // Every used block is bit-identical.
    let mismatches = compare_used_blocks(&mut src, &mut target).unwrap();
    assert!(mismatches.is_empty(), "mismatching blocks: {mismatches:?}");

    // And the restored volume mounts as an identical file system.
    let mut restored = mount(target);
    let diffs = compare_subtrees(&mut src, "/", &mut restored, "/").unwrap();
    assert!(diffs.is_empty(), "diffs: {diffs:?}");
}

#[test]
fn image_restore_preserves_snapshots() {
    let mut src = fs();
    populate(&mut src);
    // A pre-existing snapshot holding a since-deleted file.
    let f = src
        .create(INO_ROOT, "doomed", FileType::File, Attrs::default())
        .unwrap();
    src.write_fbn(f, 0, Block::Synthetic(404)).unwrap();
    let hold_id = src.snapshot_create("hold").unwrap();
    src.remove(INO_ROOT, "doomed").unwrap();
    src.cp().unwrap();

    let mut tape = drive();
    image_dump_full(&mut src, &mut tape, "weekly.0").unwrap();

    let meter = Meter::new_shared();
    let mut target = Volume::new(geometry());
    image_restore(&mut tape, &mut target, &meter, &CostModel::zero()).unwrap();
    let mut restored = mount(target);

    // "the system you restore looks just like the system you dumped,
    // snapshots and all."
    assert!(restored.snapshot_by_name("hold").is_some());
    assert!(restored.snapshot_by_name("weekly.0").is_some());
    let mut view = restored.snap_view(hold_id).unwrap();
    let ino = view.namei("/doomed").unwrap();
    let di = view.read_inode(ino).unwrap().unwrap();
    let slots = view.file_slots(&di).unwrap();
    assert!(view
        .read_file_block(&slots, 0)
        .unwrap()
        .same_content(&Block::Synthetic(404)));
    // The deleted file is absent from the restored active file system.
    assert!(restored.namei("/doomed").is_err());
}

#[test]
fn incremental_image_chain_restores_correctly() {
    let mut src = fs();
    populate(&mut src);
    let mut tape0 = drive();
    let full = image_dump_full(&mut src, &mut tape0, "base").unwrap();

    // Mutate: overwrite, create, delete.
    let f0 = src.namei("/data/file0").unwrap();
    src.write_fbn(f0, 0, Block::Synthetic(999_999)).unwrap();
    let d = src.namei("/data").unwrap();
    let newf = src
        .create(d, "created-later", FileType::File, Attrs::default())
        .unwrap();
    src.write_fbn(newf, 0, Block::Synthetic(31337)).unwrap();
    src.remove(d, "file9").unwrap();

    let mut tape1 = drive();
    let incr = image_dump_incremental(&mut src, &mut tape1, "base", "incr.1").unwrap();
    // The incremental carries far fewer blocks than the full (at this toy
    // scale fixed metadata — block-map chunks, inode file, tables —
    // dominates the delta; at realistic scale the ratio is far smaller).
    assert!(
        incr.blocks < full.blocks / 2,
        "incremental {} vs full {}",
        incr.blocks,
        full.blocks
    );

    let meter = Meter::new_shared();
    let mut target = Volume::new(geometry());
    image_restore(&mut tape0, &mut target, &meter, &CostModel::zero()).unwrap();
    let res = image_restore(&mut tape1, &mut target, &meter, &CostModel::zero()).unwrap();
    assert!(res.incremental);

    let mut restored = mount(target);
    let diffs = compare_subtrees(&mut src, "/", &mut restored, "/").unwrap();
    assert!(diffs.is_empty(), "diffs: {diffs:?}");
    assert!(restored.namei("/data/file9").is_err());
    let rf = restored.namei("/data/created-later").unwrap();
    assert!(restored
        .read_fbn(rf, 0)
        .unwrap()
        .same_content(&Block::Synthetic(31337)));
}

#[test]
fn second_level_incremental_c_minus_b() {
    let mut src = fs();
    populate(&mut src);
    let mut tape0 = drive();
    image_dump_full(&mut src, &mut tape0, "A").unwrap();

    let d = src.namei("/data").unwrap();
    let f1 = src
        .create(d, "round1", FileType::File, Attrs::default())
        .unwrap();
    src.write_fbn(f1, 0, Block::Synthetic(1)).unwrap();
    let mut tape1 = drive();
    image_dump_incremental(&mut src, &mut tape1, "A", "B").unwrap();

    let f2 = src
        .create(d, "round2", FileType::File, Attrs::default())
        .unwrap();
    src.write_fbn(f2, 0, Block::Synthetic(2)).unwrap();
    let mut tape2 = drive();
    // "A level 2 incremental whose snapshot is C ... needs to include all
    // blocks in C − B".
    let incr2 = image_dump_incremental(&mut src, &mut tape2, "B", "C").unwrap();
    assert!(incr2.blocks > 0);

    let meter = Meter::new_shared();
    let mut target = Volume::new(geometry());
    image_restore(&mut tape0, &mut target, &meter, &CostModel::zero()).unwrap();
    image_restore(&mut tape1, &mut target, &meter, &CostModel::zero()).unwrap();
    image_restore(&mut tape2, &mut target, &meter, &CostModel::zero()).unwrap();
    let mut restored = mount(target);
    let diffs = compare_subtrees(&mut src, "/", &mut restored, "/").unwrap();
    assert!(diffs.is_empty(), "diffs: {diffs:?}");
}

#[test]
fn geometry_mismatch_is_refused() {
    // "it may even be necessary to restore the file system to disks that
    // are the same size and configuration as the originals."
    let mut src = fs();
    populate(&mut src);
    let mut tape = drive();
    image_dump_full(&mut src, &mut tape, "snap").unwrap();

    let meter = Meter::new_shared();
    let mut smaller = Volume::new(VolumeGeometry::uniform(2, 4, 2048, DiskPerf::ideal()));
    let err = image_restore(&mut tape, &mut smaller, &meter, &CostModel::zero()).unwrap_err();
    assert!(matches!(err, ImageError::GeometryMismatch { .. }));
}

#[test]
fn corrupt_record_poisons_physical_restore() {
    let mut src = fs();
    populate(&mut src);
    let mut tape = drive();
    image_dump_full(&mut src, &mut tape, "snap").unwrap();
    // Damage one mid-stream record.
    assert!(tape.corrupt_record(5));

    let meter = Meter::new_shared();
    let mut target = Volume::new(geometry());
    let err = image_restore(&mut tape, &mut target, &meter, &CostModel::zero()).unwrap_err();
    // Fatal — the asymmetry with logical restore's per-file resilience.
    assert!(matches!(err, ImageError::Media(_)), "got: {err:?}");
}

#[test]
fn incremental_without_base_snapshot_fails() {
    let mut src = fs();
    populate(&mut src);
    let mut tape = drive();
    let err = image_dump_incremental(&mut src, &mut tape, "never-created", "B").unwrap_err();
    assert!(matches!(err, ImageError::NoSuchBase { .. }));
}

#[test]
fn mirror_keeps_target_in_sync() {
    let mut src = fs();
    populate(&mut src);
    let mut target = Volume::new(geometry());
    let meter = Meter::new_shared();
    let costs = CostModel::zero();
    let mut mirror = Mirror::new();

    let first = mirror.sync(&mut src, &mut target, &meter, &costs).unwrap();
    assert!(first.initial);
    {
        let mut replica = mount(clone_volume(&mut target));
        let diffs = compare_subtrees(&mut src, "/", &mut replica, "/").unwrap();
        assert!(diffs.is_empty(), "initial sync diffs: {diffs:?}");
    }

    // Mutate and sync again: the delta is small and the replica exact.
    let d = src.namei("/data").unwrap();
    let f = src
        .create(d, "new-on-source", FileType::File, Attrs::default())
        .unwrap();
    src.write_fbn(f, 0, Block::Synthetic(777)).unwrap();
    let second = mirror.sync(&mut src, &mut target, &meter, &costs).unwrap();
    assert!(!second.initial);
    assert!(second.blocks < first.blocks / 2, "delta should be small");
    {
        let mut replica = mount(clone_volume(&mut target));
        let diffs = compare_subtrees(&mut src, "/", &mut replica, "/").unwrap();
        assert!(diffs.is_empty(), "second sync diffs: {diffs:?}");
    }
    // Only the newest anchor snapshot survives on the source.
    assert!(src.snapshot_by_name("mirror.1").is_none());
    assert!(src.snapshot_by_name("mirror.2").is_some());
}

/// Copies a volume block-for-block (test helper: lets us mount the mirror
/// target while keeping the original for further syncs).
fn clone_volume(vol: &mut Volume) -> Volume {
    let mut copy = Volume::new(vol.geometry().clone());
    for bno in 0..vol.capacity() {
        let b = vol.read_block(bno).unwrap();
        copy.write_block(bno, b).unwrap();
    }
    copy.sync().unwrap();
    copy
}
