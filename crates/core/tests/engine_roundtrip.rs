//! The unified-engine contract: one generic round-trip driven through
//! `&mut dyn BackupEngine`, run against both strategies, plus the
//! obs-span / legacy-profile parity checks that pin the fluid-solver seam.

use backup_core::engine::BackupEngine;
use backup_core::engine::LogicalEngine;
use backup_core::engine::PhysicalEngine;
use backup_core::logical::catalog::DumpCatalog;
use backup_core::logical::dump::dump;
use backup_core::logical::dump::DumpOptions;
use backup_core::verify::compare_trees;
use backup_core::StageProfile;
use blockdev::Block;
use blockdev::DiskPerf;
use raid::Volume;
use raid::VolumeGeometry;
use simkit::meter::Meter;
use tape::TapeDrive;
use tape::TapePerf;
use wafl::cost::CostModel;
use wafl::types::Attrs;
use wafl::types::FileType;
use wafl::types::WaflConfig;
use wafl::types::INO_ROOT;
use wafl::Wafl;

fn geometry() -> VolumeGeometry {
    VolumeGeometry::uniform(2, 4, 4096, DiskPerf::ideal())
}

fn fresh_fs() -> Wafl {
    Wafl::format(Volume::new(geometry()), WaflConfig::default()).unwrap()
}

fn populate(fs: &mut Wafl) {
    let proj = fs
        .create(INO_ROOT, "proj", FileType::Dir, Attrs::default())
        .unwrap();
    let sub = fs
        .create(proj, "src", FileType::Dir, Attrs::default())
        .unwrap();
    for f in 0..8u64 {
        let ino = fs
            .create(sub, &format!("mod{f}.rs"), FileType::File, Attrs::default())
            .unwrap();
        for b in 0..12 {
            fs.write_fbn(ino, b, Block::Synthetic(f * 100 + b)).unwrap();
        }
    }
    let readme = fs
        .create(proj, "README", FileType::File, Attrs::default())
        .unwrap();
    fs.write_fbn(readme, 0, Block::Synthetic(9999)).unwrap();
    fs.create_symlink(proj, "latest", "/proj/src/mod0.rs", Attrs::default())
        .unwrap();
    fs.link(proj, "README.alias", readme).unwrap();
    fs.cp().unwrap();
}

/// Remounts after a restore. Logical restore leaves a live file system and
/// this is a no-op consistency check; physical restore wrote raw blocks
/// under the mount, so this is mandatory (the image path restores offline
/// volumes — NVRAM is bypassed).
fn remount(fs: Wafl) -> Wafl {
    let (vol, _stale_nv) = fs.crash();
    Wafl::mount(
        vol,
        nvram::NvramLog::new(32 * 1024 * 1024),
        WaflConfig::default(),
        Meter::new_shared(),
        CostModel::zero(),
    )
    .unwrap()
}

/// The generic contract every engine must satisfy.
fn round_trip(engine: &mut dyn BackupEngine) {
    let mut src = fresh_fs();
    populate(&mut src);

    let plan = engine.plan(&src);
    assert!(plan.estimated_blocks > 0);
    assert_eq!(
        plan.estimated_bytes,
        plan.estimated_blocks * blockdev::BLOCK_SIZE as u64
    );
    assert!(!plan.stages.is_empty());

    let mut drive = TapeDrive::new(TapePerf::ideal(), 1 << 30);
    let dumped = engine.dump(&mut src, &mut drive).expect("dump");
    assert!(dumped.blocks > 0);
    assert!(dumped.tape_bytes > 0);

    // Every planned stage ran, in order, and became a profiled span.
    let ran: Vec<String> = dumped
        .profiler
        .stages()
        .into_iter()
        .map(|s| s.name)
        .collect();
    let planned: Vec<String> = plan.stages.iter().map(|s| s.to_string()).collect();
    assert_eq!(ran, planned, "planned stages must match executed stages");
    // ... under a root span naming the operation.
    let spans = dumped.profiler.spans();
    assert!(spans[0].parent.is_none());
    assert_eq!(spans.len(), planned.len() + 1);

    let mut target = fresh_fs();
    let restored = engine.restore(&mut target, &mut drive).expect("restore");
    assert_eq!(restored.blocks, dumped.blocks);

    let mut target = remount(target);
    let diffs = compare_trees(&mut src, &mut target).unwrap();
    assert!(diffs.is_empty(), "restored tree differs: {diffs:?}");
}

#[test]
fn logical_engine_round_trips() {
    let mut engine = LogicalEngine::new(DumpOptions::builder().subtree("/").level(0).build());
    assert_eq!(engine.name(), "logical");
    round_trip(&mut engine);
    // The dump was recorded in the engine's catalog (incremental base).
    assert!(engine.catalog().base_for("/", 1).is_some());
}

#[test]
fn physical_engine_round_trips() {
    let mut engine = PhysicalEngine::default();
    assert_eq!(engine.name(), "physical");
    round_trip(&mut engine);
}

#[test]
fn physical_plan_covers_snapshots_logical_does_not() {
    let mut fs = fresh_fs();
    populate(&mut fs);
    // Pin some blocks in a snapshot, then delete the files: logical sees
    // only the active tree, physical must still carry the snapshot blocks.
    fs.snapshot_create("pinned").unwrap();
    let proj = fs.namei("/proj").unwrap();
    let src = fs.namei("/proj/src").unwrap();
    for f in 0..8u64 {
        fs.remove(src, &format!("mod{f}.rs")).unwrap();
    }
    fs.remove(proj, "src").unwrap();
    fs.cp().unwrap();

    let logical = LogicalEngine::new(DumpOptions::default()).plan(&fs);
    let physical = PhysicalEngine::default().plan(&fs);
    assert!(
        physical.estimated_blocks > logical.estimated_blocks + 50,
        "physical {} must exceed logical {} by the pinned blocks",
        physical.estimated_blocks,
        logical.estimated_blocks
    );
    assert_eq!(logical.strategy, "logical");
    assert_eq!(physical.strategy, "physical");
}

/// The RAII spans must reproduce, stage for stage, exactly what the
/// per-device counters measured — this is the invariant that keeps the
/// fluid-solver inputs (and the paper tables) unchanged across the obs
/// rewrite.
#[test]
fn span_totals_match_device_counters() {
    let mut fs = fresh_fs();
    populate(&mut fs);
    let meter = fs.meter();
    let cpu0 = meter.cpu_secs();
    let disk0 = fs.volume().all_stats();
    let mut drive = TapeDrive::new(TapePerf::ideal(), 1 << 30);
    let tape0 = drive.stats();

    let mut catalog = DumpCatalog::new();
    let out = dump(&mut fs, &mut drive, &mut catalog, &DumpOptions::default()).unwrap();

    let disk = fs.volume().all_stats().since(&disk0);
    let tape1 = drive.stats();
    let stages = out.profiler.stages();
    let total = |f: fn(&StageProfile) -> u64| stages.iter().map(f).sum::<u64>();

    assert_eq!(total(|s| s.disk_seq_read), disk.seq_reads.bytes);
    assert_eq!(total(|s| s.disk_rand_read), disk.rand_reads.bytes);
    assert_eq!(total(|s| s.disk_seq_write), disk.seq_writes.bytes);
    assert_eq!(total(|s| s.disk_rand_write), disk.rand_writes.bytes);
    assert_eq!(
        out.profiler.total_tape_bytes(),
        (tape1.written.bytes + tape1.read.bytes) - (tape0.written.bytes + tape0.read.bytes)
    );
    let cpu_delta = meter.cpu_secs() - cpu0;
    assert!(
        (out.profiler.total_cpu_secs() - cpu_delta).abs() < 1e-9,
        "span cpu {} vs meter delta {}",
        out.profiler.total_cpu_secs(),
        cpu_delta
    );
}
