//! Dumps that span multiple cartridges: the stacker magazine in action.
//!
//! The paper's drives had Breece-Hill stackers because a 188 GB dump does
//! not fit one DLT cartridge. These tests force cartridge changes with
//! tiny blanks and verify both formats restore across the spans.

use backup_core::logical::catalog::DumpCatalog;
use backup_core::logical::dump::dump;
use backup_core::logical::dump::DumpOptions;
use backup_core::logical::restore::restore;
use backup_core::physical::dump::image_dump_full;
use backup_core::physical::restore::image_restore;
use backup_core::verify::compare_trees;
use blockdev::Block;
use blockdev::DiskPerf;
use raid::Volume;
use raid::VolumeGeometry;
use simkit::meter::Meter;
use tape::TapeDrive;
use tape::TapePerf;
use wafl::cost::CostModel;
use wafl::types::Attrs;
use wafl::types::FileType;
use wafl::types::WaflConfig;
use wafl::types::INO_ROOT;
use wafl::Wafl;

fn geometry() -> VolumeGeometry {
    VolumeGeometry::uniform(1, 4, 4096, DiskPerf::ideal())
}

fn populated() -> Wafl {
    let mut fs = Wafl::format(Volume::new(geometry()), WaflConfig::default()).unwrap();
    let d = fs
        .create(INO_ROOT, "data", FileType::Dir, Attrs::default())
        .unwrap();
    for i in 0..25u64 {
        let f = fs
            .create(d, &format!("f{i}"), FileType::File, Attrs::default())
            .unwrap();
        for b in 0..16 {
            fs.write_fbn(f, b, Block::Synthetic(i * 64 + b)).unwrap();
        }
    }
    fs.cp().unwrap();
    fs
}

#[test]
fn logical_dump_spans_many_cartridges() {
    let mut src = populated();
    // 256 KiB blanks: a 25-file dump needs dozens of cartridges.
    let mut tape = TapeDrive::new(TapePerf::ideal(), 256 * 1024);
    let mut catalog = DumpCatalog::new();
    dump(&mut src, &mut tape, &mut catalog, &DumpOptions::default()).unwrap();
    assert!(
        tape.cartridges() > 5,
        "expected a spanning dump, got {} cartridges",
        tape.cartridges()
    );
    assert!(tape.stats().media_changes > 4);

    let mut dst = Wafl::format(Volume::new(geometry()), WaflConfig::default()).unwrap();
    let res = restore(&mut dst, &mut tape, "/").unwrap();
    assert!(res.warnings.is_empty(), "{:?}", res.warnings);
    let diffs = compare_trees(&mut src, &mut dst).unwrap();
    assert!(diffs.is_empty(), "diffs: {diffs:?}");
}

#[test]
fn image_dump_spans_many_cartridges() {
    let mut src = populated();
    let mut tape = TapeDrive::new(TapePerf::ideal(), 256 * 1024);
    image_dump_full(&mut src, &mut tape, "span").unwrap();
    assert!(
        tape.cartridges() > 5,
        "got {} cartridges",
        tape.cartridges()
    );

    let meter = Meter::new_shared();
    let mut raw = Volume::new(geometry());
    image_restore(&mut tape, &mut raw, &meter, &CostModel::zero()).unwrap();
    let mut restored = Wafl::mount(
        raw,
        nvram::NvramLog::new(32 << 20),
        WaflConfig::default(),
        Meter::new_shared(),
        CostModel::zero(),
    )
    .unwrap();
    let diffs = compare_trees(&mut src, &mut restored).unwrap();
    assert!(diffs.is_empty(), "diffs: {diffs:?}");
}

#[test]
fn oversized_record_still_fails_cleanly() {
    // A record larger than a whole cartridge can never be written.
    let mut src = populated();
    let mut tape = TapeDrive::new(TapePerf::ideal(), 2 * 1024);
    let mut catalog = DumpCatalog::new();
    let err = dump(&mut src, &mut tape, &mut catalog, &DumpOptions::default());
    assert!(
        err.is_err(),
        "a 4 KiB data record cannot fit a 2 KiB cartridge"
    );
}
