//! Crash-consistency tests: the paper's §2.2 story.
//!
//! "When the filer restarts after a system failure or power loss, it
//! replays any NFS requests in the NVRAM that have not reached disk" — and
//! even mid-consistency-point crashes leave a self-consistent image (no
//! fsck).

use blockdev::Block;
use blockdev::DiskPerf;
use raid::Volume;
use raid::VolumeGeometry;
use simkit::meter::Meter;
use wafl::cost::CostModel;
use wafl::types::Attrs;
use wafl::types::FileType;
use wafl::types::WaflConfig;
use wafl::types::INO_ROOT;
use wafl::Wafl;

fn volume() -> Volume {
    Volume::new(VolumeGeometry::uniform(2, 4, 2048, DiskPerf::ideal()))
}

fn remount(fs: Wafl) -> Wafl {
    let (vol, nv) = fs.crash();
    let fs = Wafl::mount(
        vol,
        nv,
        WaflConfig::default(),
        Meter::new_shared(),
        CostModel::zero(),
    )
    .expect("remount after crash");
    // Every remount must yield a fully consistent image (no fsck, ever).
    let report = wafl::check::check(&fs).expect("checker runs");
    assert!(
        report.is_clean(),
        "post-crash inconsistency: {:?}",
        report.problems
    );
    fs
}

#[test]
fn clean_state_survives_remount() {
    let mut fs = Wafl::format(volume(), WaflConfig::default()).unwrap();
    let d = fs
        .create(INO_ROOT, "docs", FileType::Dir, Attrs::default())
        .unwrap();
    let f = fs
        .create(d, "paper.tex", FileType::File, Attrs::default())
        .unwrap();
    for i in 0..40 {
        fs.write_fbn(f, i, Block::Synthetic(i * 11)).unwrap();
    }
    fs.set_attrs(
        f,
        Attrs {
            perm: 0o640,
            uid: 7,
            dos_name: Some("PAPER~1.TEX".into()),
            nt_acl: Some(vec![9, 9, 9]),
            ..Attrs::default()
        },
    )
    .unwrap();
    fs.cp().unwrap();

    let mut fs = remount(fs);
    let f2 = fs.namei("/docs/paper.tex").unwrap();
    assert_eq!(f2, f);
    let st = fs.stat(f2).unwrap();
    assert_eq!(st.size, 40 * 4096);
    assert_eq!(st.attrs.perm, 0o640);
    assert_eq!(st.attrs.dos_name.as_deref(), Some("PAPER~1.TEX"));
    assert_eq!(st.attrs.nt_acl, Some(vec![9, 9, 9]));
    for i in 0..40 {
        assert!(fs
            .read_fbn(f2, i)
            .unwrap()
            .same_content(&Block::Synthetic(i * 11)));
    }
}

#[test]
fn nvram_replay_recovers_ops_since_last_cp() {
    let mut fs = Wafl::format(volume(), WaflConfig::default()).unwrap();
    let f = fs
        .create(INO_ROOT, "base", FileType::File, Attrs::default())
        .unwrap();
    fs.write_fbn(f, 0, Block::Synthetic(1)).unwrap();
    fs.cp().unwrap();

    // Operations after the CP live only in NVRAM.
    let g = fs
        .create(INO_ROOT, "fresh", FileType::File, Attrs::default())
        .unwrap();
    fs.write_fbn(g, 0, Block::Synthetic(2)).unwrap();
    fs.write_fbn(f, 0, Block::Synthetic(3)).unwrap();
    fs.remove(INO_ROOT, "base").unwrap();
    assert!(!fs.nvram().is_empty());

    // Crash without a CP; everything above must come back via replay.
    let mut fs = remount(fs);
    assert!(fs.namei("/base").is_err(), "remove must be replayed");
    let g2 = fs.namei("/fresh").unwrap();
    assert!(fs
        .read_fbn(g2, 0)
        .unwrap()
        .same_content(&Block::Synthetic(2)));
    assert!(fs.nvram().is_empty(), "replay ends with a commit");
}

#[test]
fn crash_without_nvram_loses_recent_ops_but_stays_consistent() {
    let mut fs = Wafl::format(volume(), WaflConfig::default()).unwrap();
    let f = fs
        .create(INO_ROOT, "durable", FileType::File, Attrs::default())
        .unwrap();
    fs.write_fbn(f, 0, Block::Synthetic(1)).unwrap();
    fs.cp().unwrap();
    fs.create(INO_ROOT, "volatile", FileType::File, Attrs::default())
        .unwrap();

    // Simulate NVRAM loss: drop the log entirely (paper: "the only damage
    // is that a few seconds worth of NFS operations may be lost").
    let (vol, mut nv) = fs.crash();
    nv.drain_for_replay();
    let fs = Wafl::mount(
        vol,
        nv,
        WaflConfig::default(),
        Meter::new_shared(),
        CostModel::zero(),
    )
    .unwrap();
    assert!(fs.namei("/durable").is_ok());
    assert!(fs.namei("/volatile").is_err());
}

#[test]
fn crash_mid_cp_falls_back_to_previous_cp() {
    let mut fs = Wafl::format(volume(), WaflConfig::default()).unwrap();
    let f = fs
        .create(INO_ROOT, "steady", FileType::File, Attrs::default())
        .unwrap();
    fs.write_fbn(f, 0, Block::Synthetic(10)).unwrap();
    fs.cp().unwrap();
    let committed_cp = fs.cp_count();

    // More work, then a CP that dies before the fsinfo write: all the new
    // metadata blocks are on disk, but the commit record never lands.
    let g = fs
        .create(INO_ROOT, "in-flight", FileType::File, Attrs::default())
        .unwrap();
    fs.write_fbn(g, 0, Block::Synthetic(20)).unwrap();
    fs.write_fbn(f, 0, Block::Synthetic(11)).unwrap();
    fs.cp_without_fsinfo().unwrap();

    let (vol, mut nv) = fs.crash();
    // NVRAM also lost, to prove the *disk image alone* is consistent.
    nv.drain_for_replay();
    let mut fs = Wafl::mount(
        vol,
        nv,
        WaflConfig::default(),
        Meter::new_shared(),
        CostModel::zero(),
    )
    .unwrap();
    assert_eq!(
        fs.cp_count(),
        committed_cp,
        "the torn CP must be invisible; the last committed CP wins"
    );
    assert!(fs.namei("/in-flight").is_err());
    let f2 = fs.namei("/steady").unwrap();
    assert!(
        fs.read_fbn(f2, 0)
            .unwrap()
            .same_content(&Block::Synthetic(10)),
        "must see the pre-CP content, not the torn write"
    );
}

#[test]
fn snapshots_survive_crash_and_remount() {
    let mut fs = Wafl::format(volume(), WaflConfig::default()).unwrap();
    let f = fs
        .create(INO_ROOT, "f", FileType::File, Attrs::default())
        .unwrap();
    fs.write_fbn(f, 0, Block::Synthetic(1)).unwrap();
    let id = fs.snapshot_create("nightly.0").unwrap();
    fs.write_fbn(f, 0, Block::Synthetic(2)).unwrap();
    fs.cp().unwrap();

    let mut fs = remount(fs);
    assert_eq!(fs.snapshots().len(), 1);
    assert_eq!(fs.snapshot_by_name("nightly.0").unwrap().id, id);
    let mut view = fs.snap_view(id).unwrap();
    let ino = view.namei("/f").unwrap();
    let di = view.read_inode(ino).unwrap().unwrap();
    let slots = view.file_slots(&di).unwrap();
    assert!(view
        .read_file_block(&slots, 0)
        .unwrap()
        .same_content(&Block::Synthetic(1)));
}

#[test]
fn repeated_crashes_are_idempotent() {
    let mut fs = Wafl::format(volume(), WaflConfig::default()).unwrap();
    for round in 0..5u64 {
        let name = format!("round{round}");
        let f = fs
            .create(INO_ROOT, &name, FileType::File, Attrs::default())
            .unwrap();
        fs.write_fbn(f, 0, Block::Synthetic(round)).unwrap();
        fs = remount(fs);
    }
    for round in 0..5u64 {
        let ino = fs.namei(&format!("/round{round}")).unwrap();
        assert!(fs
            .read_fbn(ino, 0)
            .unwrap()
            .same_content(&Block::Synthetic(round)));
    }
}

#[test]
fn auto_cp_triggers_at_nvram_watermark() {
    // A tiny NVRAM forces frequent consistency points during a write burst.
    let cfg = WaflConfig {
        nvram_bytes: 64 * 1024,
        auto_cp_on_watermark: true,
    };
    let mut fs = Wafl::format(volume(), cfg).unwrap();
    let before = fs.cp_count();
    let f = fs
        .create(INO_ROOT, "burst", FileType::File, Attrs::default())
        .unwrap();
    for i in 0..64 {
        fs.write_fbn(f, i, Block::Synthetic(i)).unwrap();
    }
    assert!(
        fs.cp_count() > before + 2,
        "expected several automatic CPs, got {}",
        fs.cp_count() - before
    );
    // And the data is all there after a crash even with a tiny log.
    let (vol, nv) = fs.crash();
    let mut fs = Wafl::mount(
        vol,
        nv,
        WaflConfig::default(),
        Meter::new_shared(),
        CostModel::zero(),
    )
    .unwrap();
    let f2 = fs.namei("/burst").unwrap();
    for i in 0..64 {
        assert!(fs
            .read_fbn(f2, i)
            .unwrap()
            .same_content(&Block::Synthetic(i)));
    }
}

#[test]
fn mount_rejects_garbage_volume() {
    let vol = volume();
    let result = Wafl::mount(
        vol,
        nvram::NvramLog::new(1024),
        WaflConfig::default(),
        Meter::new_shared(),
        CostModel::zero(),
    );
    match result {
        Err(wafl::WaflError::BadImage { .. }) => {}
        Err(other) => panic!("wrong error: {other}"),
        Ok(_) => panic!("garbage volume must not mount"),
    }
}

/// Sets up the canonical armed-crash scenario: a committed "pre" file,
/// then an uncommitted "post" delta sitting in NVRAM.
fn pre_post_fs() -> wafl::Wafl {
    let mut fs = Wafl::format(volume(), WaflConfig::default()).unwrap();
    let f = fs
        .create(INO_ROOT, "pre", FileType::File, Attrs::default())
        .unwrap();
    fs.write_fbn(f, 0, Block::Synthetic(1)).unwrap();
    fs.cp().unwrap();
    let g = fs
        .create(INO_ROOT, "post", FileType::File, Attrs::default())
        .unwrap();
    fs.write_fbn(g, 0, Block::Synthetic(2)).unwrap();
    fs
}

/// Mounts the on-disk image alone (NVRAM contents discarded), requiring a
/// clean invariant check — the disk image must stand on its own at every
/// crash depth.
fn mount_image_only(fs: wafl::Wafl) -> wafl::Wafl {
    simkit::crash::disarm();
    let (vol, mut nv) = fs.crash();
    nv.drain_for_replay();
    let fs = Wafl::mount(
        vol,
        nv,
        WaflConfig::default(),
        Meter::new_shared(),
        CostModel::zero(),
    )
    .expect("image-only mount");
    let report = wafl::check::check(&fs).expect("checker runs");
    assert!(
        report.is_clean(),
        "post-crash inconsistency: {:?}",
        report.problems
    );
    fs
}

/// A power loss at *every* enumerated depth inside the consistency point
/// (after dirty-data flush, after the inode-file rewrite, just before the
/// fsinfo commit, and between the two fsinfo copies): the disk image
/// alone must mount to exactly the pre-CP state or exactly the post-CP
/// state — never a blend.
#[test]
fn armed_crash_at_every_cp_depth_leaves_pre_or_post_image() {
    use simkit::crash::{self, CrashPlan, CrashPoint};

    for depth in 1..=4u64 {
        let mut fs = pre_post_fs();
        let committed_cp = fs.cp_count();

        crash::arm(CrashPlan::new().trip_at(CrashPoint::CpCommit, depth));
        match fs.cp() {
            Err(wafl::WaflError::PowerLoss { point }) => {
                assert_eq!(point, CrashPoint::CpCommit)
            }
            other => panic!("depth {depth}: expected power loss, got {other:?}"),
        }
        assert_eq!(crash::tripped(), Some(CrashPoint::CpCommit));

        let mut fs = mount_image_only(fs);
        let pre_ino = fs.namei("/pre").expect("committed file must survive");
        assert!(fs
            .read_fbn(pre_ino, 0)
            .unwrap()
            .same_content(&Block::Synthetic(1)));
        match fs.namei("/post") {
            // Pre-CP image: the torn CP is invisible in full.
            Err(_) => assert_eq!(
                fs.cp_count(),
                committed_cp,
                "depth {depth}: pre-CP image must carry the old cp_count"
            ),
            // Post-CP image (a torn fsinfo pair still holds one valid
            // copy of the *new* fsinfo): the delta is visible in full.
            Ok(post_ino) => {
                assert!(
                    fs.cp_count() > committed_cp,
                    "depth {depth}: post-CP image must carry the new cp_count"
                );
                assert!(fs
                    .read_fbn(post_ino, 0)
                    .unwrap()
                    .same_content(&Block::Synthetic(2)));
            }
        }
    }
}

/// Depths 1–3 die before any fsinfo write, so the image-only mount must
/// be exactly pre-CP; with NVRAM intact the same crash must recover to
/// exactly post-op state via replay.
#[test]
fn early_cp_depths_are_pre_cp_on_disk_but_replay_to_post_op() {
    use simkit::crash::{self, CrashPlan, CrashPoint};

    for depth in 1..=3u64 {
        // Disk image alone: pre-CP.
        let mut fs = pre_post_fs();
        let committed_cp = fs.cp_count();
        crash::arm(CrashPlan::new().trip_at(CrashPoint::CpCommit, depth));
        assert!(fs.cp().is_err());
        let fs = mount_image_only(fs);
        assert_eq!(fs.cp_count(), committed_cp, "depth {depth}");
        assert!(fs.namei("/post").is_err(), "depth {depth}");

        // NVRAM intact: replay restores the in-flight delta.
        let mut fs = pre_post_fs();
        crash::arm(CrashPlan::new().trip_at(CrashPoint::CpCommit, depth));
        assert!(fs.cp().is_err());
        crash::disarm();
        let mut fs = remount(fs);
        let post = fs.namei("/post").expect("replay must restore the delta");
        assert!(fs
            .read_fbn(post, 0)
            .unwrap()
            .same_content(&Block::Synthetic(2)));
        assert!(fs.nvram().is_empty(), "replay ends with a commit");
    }
}

/// A power loss during the NVRAM flush itself (fsinfo already committed,
/// log never cleared): the log still holds already-applied ops, and the
/// replay must be idempotent — same final state, no duplicated effects.
#[test]
fn crash_during_nvram_flush_replays_idempotently() {
    use simkit::crash::{self, CrashPlan, CrashPoint};

    let mut fs = pre_post_fs();
    let committed_cp = fs.cp_count();
    crash::arm(CrashPlan::new().trip_at(CrashPoint::NvramFlush, 1));
    match fs.cp() {
        Err(wafl::WaflError::PowerLoss { point }) => assert_eq!(point, CrashPoint::NvramFlush),
        other => panic!("expected power loss in the flush, got {other:?}"),
    }
    crash::disarm();

    // The CP itself landed: the on-disk image is already post-CP.
    assert!(
        !fs.nvram().is_empty(),
        "the log must survive a failed flush"
    );
    let mut fs = remount(fs);
    assert!(fs.cp_count() > committed_cp);
    let post = fs.namei("/post").unwrap();
    assert!(fs
        .read_fbn(post, 0)
        .unwrap()
        .same_content(&Block::Synthetic(2)));
    let pre = fs.namei("/pre").unwrap();
    assert!(fs
        .read_fbn(pre, 0)
        .unwrap()
        .same_content(&Block::Synthetic(1)));
    assert!(fs.nvram().is_empty(), "recovery ends with a committed log");
}
