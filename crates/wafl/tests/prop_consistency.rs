//! The big consistency property: after *any* sequence of operations,
//! snapshots, consistency points and crashes, the remounted file system
//! passes the full cross-check against its block map — the "no fsck"
//! claim under adversarial schedules. Schedules come from a deterministic
//! seeded generator.

use blockdev::Block;
use blockdev::DiskPerf;
use raid::Volume;
use raid::VolumeGeometry;
use simkit::meter::Meter;
use simkit::rng::SimRng;
use wafl::check::check;
use wafl::cost::CostModel;
use wafl::types::Attrs;
use wafl::types::FileType;
use wafl::types::WaflConfig;
use wafl::types::INO_ROOT;
use wafl::Wafl;

/// One scripted operation.
#[derive(Debug, Clone)]
enum Op {
    Create {
        dir_sel: u8,
        name_sel: u8,
    },
    Mkdir {
        dir_sel: u8,
        name_sel: u8,
    },
    Write {
        file_sel: u8,
        fbn: u8,
        seed: u64,
    },
    Truncate {
        file_sel: u8,
        blocks: u8,
    },
    Remove {
        any_sel: u8,
    },
    Rename {
        any_sel: u8,
        dir_sel: u8,
        name_sel: u8,
    },
    Link {
        file_sel: u8,
        dir_sel: u8,
        name_sel: u8,
    },
    Symlink {
        dir_sel: u8,
        name_sel: u8,
    },
    Snapshot,
    DeleteSnapshot {
        sel: u8,
    },
    Cp,
    Crash {
        lose_nvram: bool,
    },
}

fn arb_op(rng: &mut SimRng) -> Op {
    match rng.range(0, 12) {
        0 => Op::Create {
            dir_sel: rng.next_u64() as u8,
            name_sel: rng.next_u64() as u8,
        },
        1 => Op::Mkdir {
            dir_sel: rng.next_u64() as u8,
            name_sel: rng.next_u64() as u8,
        },
        2 => Op::Write {
            file_sel: rng.next_u64() as u8,
            fbn: (rng.next_u64() as u8) % 40,
            seed: rng.next_u64(),
        },
        3 => Op::Truncate {
            file_sel: rng.next_u64() as u8,
            blocks: (rng.next_u64() as u8) % 16,
        },
        4 => Op::Remove {
            any_sel: rng.next_u64() as u8,
        },
        5 => Op::Rename {
            any_sel: rng.next_u64() as u8,
            dir_sel: rng.next_u64() as u8,
            name_sel: rng.next_u64() as u8,
        },
        6 => Op::Link {
            file_sel: rng.next_u64() as u8,
            dir_sel: rng.next_u64() as u8,
            name_sel: rng.next_u64() as u8,
        },
        7 => Op::Symlink {
            dir_sel: rng.next_u64() as u8,
            name_sel: rng.next_u64() as u8,
        },
        8 => Op::Snapshot,
        9 => Op::DeleteSnapshot {
            sel: rng.next_u64() as u8,
        },
        10 => Op::Cp,
        _ => Op::Crash {
            lose_nvram: rng.chance(0.5),
        },
    }
}

/// Current namespace helpers (recomputed cheaply; the trees are tiny).
fn all_dirs(fs: &Wafl) -> Vec<u32> {
    let mut dirs = vec![INO_ROOT];
    let mut stack = vec![INO_ROOT];
    while let Some(d) = stack.pop() {
        for (_, child) in fs.readdir(d).unwrap() {
            if fs.stat(child).unwrap().ftype == FileType::Dir {
                dirs.push(child);
                stack.push(child);
            }
        }
    }
    dirs
}

fn all_entries(fs: &Wafl) -> Vec<(u32, String, u32, FileType)> {
    let mut out = Vec::new();
    let mut stack = vec![INO_ROOT];
    while let Some(d) = stack.pop() {
        for (name, child) in fs.readdir(d).unwrap() {
            let ftype = fs.stat(child).unwrap().ftype;
            out.push((d, name, child, ftype));
            if ftype == FileType::Dir {
                stack.push(child);
            }
        }
    }
    out
}

#[test]
fn any_schedule_leaves_a_consistent_image() {
    let mut rng = SimRng::seed_from_u64(0xc0de_5eed);
    for case in 0..48 {
        let vol = Volume::new(VolumeGeometry::uniform(1, 4, 2048, DiskPerf::ideal()));
        let mut fs = Wafl::format(vol, WaflConfig::default()).unwrap();
        let mut serial = 0u64;
        let nops = rng.range(1, 60);
        for _ in 0..nops {
            serial += 1;
            match arb_op(&mut rng) {
                Op::Create { dir_sel, name_sel } => {
                    let dirs = all_dirs(&fs);
                    let parent = dirs[dir_sel as usize % dirs.len()];
                    let _ = fs.create(
                        parent,
                        &format!("f{}-{serial}", name_sel),
                        FileType::File,
                        Attrs::default(),
                    );
                }
                Op::Mkdir { dir_sel, name_sel } => {
                    let dirs = all_dirs(&fs);
                    let parent = dirs[dir_sel as usize % dirs.len()];
                    let _ = fs.create(
                        parent,
                        &format!("d{}-{serial}", name_sel),
                        FileType::Dir,
                        Attrs::default(),
                    );
                }
                Op::Write {
                    file_sel,
                    fbn,
                    seed,
                } => {
                    let files: Vec<u32> = all_entries(&fs)
                        .into_iter()
                        .filter(|(_, _, _, t)| *t == FileType::File)
                        .map(|(_, _, i, _)| i)
                        .collect();
                    if !files.is_empty() {
                        let ino = files[file_sel as usize % files.len()];
                        fs.write_fbn(ino, fbn as u64, Block::Synthetic(seed))
                            .unwrap();
                    }
                }
                Op::Truncate { file_sel, blocks } => {
                    let files: Vec<u32> = all_entries(&fs)
                        .into_iter()
                        .filter(|(_, _, _, t)| *t == FileType::File)
                        .map(|(_, _, i, _)| i)
                        .collect();
                    if !files.is_empty() {
                        let ino = files[file_sel as usize % files.len()];
                        fs.set_size(ino, blocks as u64 * 4096).unwrap();
                    }
                }
                Op::Remove { any_sel } => {
                    let entries = all_entries(&fs);
                    if !entries.is_empty() {
                        let (parent, name, _, _) =
                            entries[any_sel as usize % entries.len()].clone();
                        // May fail on non-empty dirs; that's fine.
                        let _ = fs.remove(parent, &name);
                    }
                }
                Op::Rename {
                    any_sel,
                    dir_sel,
                    name_sel,
                } => {
                    let entries = all_entries(&fs);
                    let dirs = all_dirs(&fs);
                    if !entries.is_empty() {
                        let (parent, name, ino, _) =
                            entries[any_sel as usize % entries.len()].clone();
                        let to_dir = dirs[dir_sel as usize % dirs.len()];
                        // Moving a directory under itself must fail or be
                        // harmless; collisions just error.
                        if to_dir != ino {
                            let _ = fs.rename(
                                parent,
                                &name,
                                to_dir,
                                &format!("r{}-{serial}", name_sel),
                            );
                        }
                    }
                }
                Op::Link {
                    file_sel,
                    dir_sel,
                    name_sel,
                } => {
                    let files: Vec<u32> = all_entries(&fs)
                        .into_iter()
                        .filter(|(_, _, _, t)| *t != FileType::Dir)
                        .map(|(_, _, i, _)| i)
                        .collect();
                    let dirs = all_dirs(&fs);
                    if !files.is_empty() {
                        let ino = files[file_sel as usize % files.len()];
                        let dir = dirs[dir_sel as usize % dirs.len()];
                        // Cross-qtree and collision failures are fine.
                        let _ = fs.link(dir, &format!("l{}-{serial}", name_sel), ino);
                    }
                }
                Op::Symlink { dir_sel, name_sel } => {
                    let dirs = all_dirs(&fs);
                    let dir = dirs[dir_sel as usize % dirs.len()];
                    let _ = fs.create_symlink(
                        dir,
                        &format!("s{}-{serial}", name_sel),
                        "/some/target",
                        Attrs::default(),
                    );
                }
                Op::Snapshot => {
                    let _ = fs.snapshot_create(&format!("s{serial}"));
                }
                Op::DeleteSnapshot { sel } => {
                    let snaps: Vec<u8> = fs.snapshots().iter().map(|s| s.id).collect();
                    if !snaps.is_empty() {
                        fs.snapshot_delete(snaps[sel as usize % snaps.len()])
                            .unwrap();
                    }
                }
                Op::Cp => fs.cp().unwrap(),
                Op::Crash { lose_nvram } => {
                    let (vol, mut nv) = fs.crash();
                    if lose_nvram {
                        nv.drain_for_replay();
                    }
                    fs = Wafl::mount(
                        vol,
                        nv,
                        WaflConfig::default(),
                        Meter::new_shared(),
                        CostModel::zero(),
                    )
                    .expect("remount after crash");
                }
            }
        }

        // Final verdict: commit, crash, remount, full consistency check.
        fs.cp().unwrap();
        let (vol, nv) = fs.crash();
        let fs = Wafl::mount(
            vol,
            nv,
            WaflConfig::default(),
            Meter::new_shared(),
            CostModel::zero(),
        )
        .expect("final remount");
        let report = check(&fs).unwrap();
        assert!(
            report.is_clean(),
            "case {case}: problems: {:?}",
            report.problems
        );
    }
}
