//! Randomized tests for on-disk serialization and block-map plane algebra,
//! driven by a deterministic seeded generator.

use simkit::rng::SimRng;
use std::collections::BTreeMap;
use wafl::blkmap::BlkMap;
use wafl::ondisk;
use wafl::ondisk::DiskInode;
use wafl::ondisk::TreeRoot;
use wafl::types::Attrs;
use wafl::types::FileType;
use wafl::types::INODE_SIZE;
use wafl::types::MAX_ACL;
use wafl::types::MAX_DOS_NAME;
use wafl::types::NDIRECT;

fn arb_string(rng: &mut SimRng, alphabet: &[u8], lo: u64, hi: u64) -> String {
    let len = rng.range(lo, hi);
    (0..len)
        .map(|_| alphabet[rng.range(0, alphabet.len() as u64) as usize] as char)
        .collect()
}

fn arb_attrs(rng: &mut SimRng) -> Attrs {
    let mtime = rng.next_u64();
    Attrs {
        perm: rng.next_u64() as u16,
        uid: rng.next_u64() as u32,
        gid: rng.next_u64() as u32,
        mtime,
        ctime: mtime.wrapping_add(1),
        atime: mtime.wrapping_add(2),
        dos_attrs: rng.next_u64() as u8,
        dos_time: mtime.wrapping_mul(3),
        dos_name: if rng.chance(0.5) {
            Some(arb_string(
                rng,
                b"ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789~.",
                1,
                13,
            ))
            .filter(|n| n.len() <= MAX_DOS_NAME)
        } else {
            None
        },
        nt_acl: if rng.chance(0.5) {
            let len = rng.range(1, MAX_ACL as u64) as usize;
            Some((0..len).map(|_| rng.next_u64() as u8).collect())
        } else {
            None
        },
    }
}

fn arb_inode(rng: &mut SimRng) -> DiskInode {
    let attrs = arb_attrs(rng);
    let ftype = if rng.chance(0.5) {
        FileType::File
    } else {
        FileType::Dir
    };
    let mut direct = [0u32; NDIRECT];
    for d in &mut direct {
        *d = rng.next_u64() as u32;
    }
    DiskInode {
        ftype: Some(ftype),
        attrs,
        nlink: rng.next_u64() as u16,
        qtree: rng.next_u64() as u16,
        gen: rng.next_u64() as u32,
        root: TreeRoot {
            size: rng.next_u64(),
            direct,
            indirect: rng.next_u64() as u32,
            dindirect: rng.next_u64() as u32,
        },
    }
}

#[test]
fn inode_serialization_round_trips() {
    let mut rng = SimRng::seed_from_u64(0x0d15_c001);
    for case in 0..256 {
        let inode = arb_inode(&mut rng);
        let mut slot = vec![0u8; INODE_SIZE];
        inode.write_to(&mut slot);
        assert_eq!(DiskInode::read_from(&slot), inode, "case {case}");
    }
}

#[test]
fn dir_blocks_round_trip() {
    let mut rng = SimRng::seed_from_u64(0x0d15_c002);
    for case in 0..256 {
        // BTreeMap mirrors the original strategy: sorted, unique names.
        let mut entries: BTreeMap<String, u32> = BTreeMap::new();
        for _ in 0..rng.range(0, 200) {
            let name = arb_string(
                &mut rng,
                b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-",
                1,
                41,
            );
            entries.insert(name, rng.range(1, 1_000_000) as u32);
        }
        let blocks = ondisk::dir_to_blocks(entries.iter().map(|(n, i)| (n.as_str(), *i)));
        let mut back = Vec::new();
        for b in &blocks {
            back.extend(ondisk::dir_from_block(b));
        }
        let expected: Vec<(String, u32)> = entries.into_iter().collect();
        assert_eq!(back, expected, "case {case}");
    }
}

#[test]
fn ptr_blocks_round_trip() {
    let mut rng = SimRng::seed_from_u64(0x0d15_c003);
    for case in 0..256 {
        let ptrs: Vec<u32> = (0..rng.range(0, 1024))
            .map(|_| rng.next_u64() as u32)
            .collect();
        let back = ondisk::ptrs_from_block(&ondisk::ptrs_to_block(&ptrs));
        assert_eq!(&back[..ptrs.len()], &ptrs[..], "case {case}");
        assert!(back[ptrs.len()..].iter().all(|&p| p == 0), "case {case}");
    }
}

/// Plane algebra: after arbitrary set/clear/snapshot operations, the
/// invariants of the 32-bit-per-block map hold.
#[test]
fn blkmap_plane_invariants() {
    let mut rng = SimRng::seed_from_u64(0x0d15_c004);
    for case in 0..256 {
        let mut m = BlkMap::new(256);
        for _ in 0..rng.range(1, 200) {
            let op = rng.range(0, 4) as u8;
            let bno = rng.range(0, 256);
            let snap = rng.range(1, 5) as u8;
            match op {
                0 => m.set_active(bno),
                1 => m.clear_active(bno),
                2 => {
                    m.snap_create(snap);
                }
                _ => m.snap_delete(snap),
            }
            // Invariant: a block is free iff no plane references it.
            assert_eq!(m.is_free(bno), m.word(bno) == 0, "case {case}");
        }
        // Count identities.
        let active = m.count_plane(0);
        let by_iter = m.iter_plane(0).count() as u64;
        assert_eq!(active, by_iter, "case {case}");
        // A fresh snapshot is exactly the active plane.
        m.snap_create(5);
        assert_eq!(m.count_plane(5), m.count_plane(0), "case {case}");
        let diff: Vec<u64> = m.iter_diff(0, 5).collect();
        assert!(
            diff.is_empty(),
            "case {case}: active - snapshot must be empty right after create"
        );
    }
}

/// The incremental dump set (B − A) plus the unchanged set (A ∩ B)
/// covers exactly B.
#[test]
fn diff_partitions_the_plane() {
    let mut rng = SimRng::seed_from_u64(0x0d15_c005);
    for case in 0..256 {
        let mut m = BlkMap::new(512);
        for _ in 0..rng.range(0, 128) {
            m.set_active(rng.range(0, 512));
        }
        m.snap_create(1);
        for _ in 0..rng.range(0, 128) {
            m.set_active(rng.range(0, 512));
        }
        for _ in 0..rng.range(0, 128) {
            m.clear_active(rng.range(0, 512));
        }
        m.snap_create(2);
        let b_total = m.count_plane(2);
        let newly: u64 = m.iter_diff(2, 1).count() as u64;
        let unchanged = (0..512)
            .filter(|&b| m.in_snapshot(b, 1) && m.in_snapshot(b, 2))
            .count() as u64;
        assert_eq!(newly + unchanged, b_total, "case {case}");
    }
}
