//! Property tests for on-disk serialization and block-map plane algebra.

use proptest::prelude::*;
use wafl::blkmap::BlkMap;
use wafl::ondisk;
use wafl::ondisk::DiskInode;
use wafl::ondisk::TreeRoot;
use wafl::types::Attrs;
use wafl::types::FileType;
use wafl::types::INODE_SIZE;
use wafl::types::MAX_ACL;
use wafl::types::MAX_DOS_NAME;
use wafl::types::NDIRECT;

fn arb_attrs() -> impl Strategy<Value = Attrs> {
    (
        any::<u16>(),
        any::<u32>(),
        any::<u32>(),
        any::<u64>(),
        any::<u8>(),
        proptest::option::of("[A-Z0-9~.]{1,12}"),
        proptest::option::of(proptest::collection::vec(any::<u8>(), 1..MAX_ACL)),
    )
        .prop_map(|(perm, uid, gid, mtime, dos_attrs, dos_name, nt_acl)| Attrs {
            perm,
            uid,
            gid,
            mtime,
            ctime: mtime.wrapping_add(1),
            atime: mtime.wrapping_add(2),
            dos_attrs,
            dos_time: mtime.wrapping_mul(3),
            dos_name: dos_name.filter(|n| n.len() <= MAX_DOS_NAME),
            nt_acl,
        })
}

fn arb_inode() -> impl Strategy<Value = DiskInode> {
    (
        arb_attrs(),
        prop_oneof![Just(FileType::File), Just(FileType::Dir)],
        any::<u16>(),
        any::<u16>(),
        any::<u32>(),
        any::<u64>(),
        proptest::collection::vec(any::<u32>(), NDIRECT),
        any::<u32>(),
        any::<u32>(),
    )
        .prop_map(
            |(attrs, ftype, nlink, qtree, gen, size, direct, ind, dind)| DiskInode {
                ftype: Some(ftype),
                attrs,
                nlink,
                qtree,
                gen,
                root: TreeRoot {
                    size,
                    direct: direct.try_into().expect("NDIRECT entries"),
                    indirect: ind,
                    dindirect: dind,
                },
            },
        )
}

proptest! {
    #[test]
    fn inode_serialization_round_trips(inode in arb_inode()) {
        let mut slot = vec![0u8; INODE_SIZE];
        inode.write_to(&mut slot);
        prop_assert_eq!(DiskInode::read_from(&slot), inode);
    }

    #[test]
    fn dir_blocks_round_trip(entries in proptest::collection::btree_map(
        "[a-zA-Z0-9._-]{1,40}", 1u32..1_000_000, 0..200,
    )) {
        let blocks = ondisk::dir_to_blocks(entries.iter().map(|(n, i)| (n.as_str(), *i)));
        let mut back = Vec::new();
        for b in &blocks {
            back.extend(ondisk::dir_from_block(b));
        }
        let expected: Vec<(String, u32)> =
            entries.into_iter().collect();
        prop_assert_eq!(back, expected);
    }

    #[test]
    fn ptr_blocks_round_trip(ptrs in proptest::collection::vec(any::<u32>(), 0..1024)) {
        let back = ondisk::ptrs_from_block(&ondisk::ptrs_to_block(&ptrs));
        prop_assert_eq!(&back[..ptrs.len()], &ptrs[..]);
        prop_assert!(back[ptrs.len()..].iter().all(|&p| p == 0));
    }

    /// Plane algebra: after arbitrary set/clear/snapshot operations, the
    /// invariants of the 32-bit-per-block map hold.
    #[test]
    fn blkmap_plane_invariants(ops in proptest::collection::vec(
        (0u8..4, 0u64..256, 1u8..5), 1..200,
    )) {
        let mut m = BlkMap::new(256);
        for (op, bno, snap) in ops {
            match op {
                0 => m.set_active(bno),
                1 => m.clear_active(bno),
                2 => { m.snap_create(snap); }
                _ => m.snap_delete(snap),
            }
            // Invariant: a block is free iff no plane references it.
            prop_assert_eq!(m.is_free(bno), m.word(bno) == 0);
        }
        // Count identities.
        let active = m.count_plane(0);
        let by_iter = m.iter_plane(0).count() as u64;
        prop_assert_eq!(active, by_iter);
        // A fresh snapshot is exactly the active plane.
        m.snap_create(5);
        prop_assert_eq!(m.count_plane(5), m.count_plane(0));
        let diff: Vec<u64> = m.iter_diff(0, 5).collect();
        prop_assert!(diff.is_empty(), "active - snapshot must be empty right after create");
    }

    /// The incremental dump set (B − A) plus the unchanged set (A ∩ B)
    /// covers exactly B.
    #[test]
    fn diff_partitions_the_plane(
        seed_a in proptest::collection::vec(0u64..512, 0..128),
        adds in proptest::collection::vec(0u64..512, 0..128),
        dels in proptest::collection::vec(0u64..512, 0..128),
    ) {
        let mut m = BlkMap::new(512);
        for b in seed_a { m.set_active(b); }
        m.snap_create(1);
        for b in adds { m.set_active(b); }
        for b in dels { m.clear_active(b); }
        m.snap_create(2);
        let b_total = m.count_plane(2);
        let newly: u64 = m.iter_diff(2, 1).count() as u64;
        let unchanged = (0..512).filter(|&b| m.in_snapshot(b, 1) && m.in_snapshot(b, 2)).count() as u64;
        prop_assert_eq!(newly + unchanged, b_total);
    }
}
