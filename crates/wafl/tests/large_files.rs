//! Coverage for the deeper parts of the block tree (single- and
//! double-indirect mappings) and for fsinfo redundancy.

use blockdev::Block;
use blockdev::DiskPerf;
use raid::Volume;
use raid::VolumeGeometry;
use simkit::meter::Meter;
use wafl::cost::CostModel;
use wafl::types::Attrs;
use wafl::types::FileType;
use wafl::types::WaflConfig;
use wafl::types::INO_ROOT;
use wafl::types::NDIRECT;
use wafl::types::PTRS_PER_BLOCK;
use wafl::Wafl;

fn volume() -> Volume {
    // Big enough for a double-indirect file: > 1040 blocks + metadata.
    Volume::new(VolumeGeometry::uniform(1, 8, 4096, DiskPerf::ideal()))
}

fn remount(fs: Wafl) -> Wafl {
    let (vol, nv) = fs.crash();
    Wafl::mount(
        vol,
        nv,
        WaflConfig::default(),
        Meter::new_shared(),
        CostModel::zero(),
    )
    .expect("remount")
}

#[test]
fn file_spanning_all_three_mapping_levels_survives_remount() {
    let mut fs = Wafl::format(volume(), WaflConfig::default()).unwrap();
    let f = fs
        .create(INO_ROOT, "big", FileType::File, Attrs::default())
        .unwrap();
    let nd = NDIRECT as u64;
    // Direct, single-indirect, and double-indirect territory, with holes
    // between them.
    let probes: Vec<u64> = vec![
        0,
        nd - 1,                  // last direct
        nd,                      // first single-indirect
        nd + PTRS_PER_BLOCK - 1, // last single-indirect
        nd + PTRS_PER_BLOCK,     // first double-indirect
        nd + PTRS_PER_BLOCK + 700,
        nd + 2 * PTRS_PER_BLOCK + 3, // second L1 child
    ];
    for (i, &fbn) in probes.iter().enumerate() {
        fs.write_fbn(f, fbn, Block::Synthetic(7000 + i as u64))
            .unwrap();
    }
    fs.cp().unwrap();

    let mut fs = remount(fs);
    let f2 = fs.namei("/big").unwrap();
    for (i, &fbn) in probes.iter().enumerate() {
        assert!(
            fs.read_fbn(f2, fbn)
                .unwrap()
                .same_content(&Block::Synthetic(7000 + i as u64)),
            "probe fbn {fbn}"
        );
    }
    // Holes between probes are still holes.
    assert!(fs.read_fbn(f2, 5).unwrap().same_content(&Block::Zero));
    assert!(fs
        .read_fbn(f2, nd + PTRS_PER_BLOCK + 500)
        .unwrap()
        .same_content(&Block::Zero));
    let st = fs.stat(f2).unwrap();
    assert_eq!(st.blocks, probes.len() as u64);
}

#[test]
fn dense_double_indirect_file_round_trips() {
    let mut fs = Wafl::format(volume(), WaflConfig::default()).unwrap();
    let f = fs
        .create(INO_ROOT, "dense", FileType::File, Attrs::default())
        .unwrap();
    let n = 1500u64; // crosses into double-indirect territory
    for fbn in 0..n {
        fs.write_fbn(f, fbn, Block::Synthetic(fbn * 3)).unwrap();
    }
    let mut fs = remount(fs);
    let f2 = fs.namei("/dense").unwrap();
    for fbn in 0..n {
        assert!(
            fs.read_fbn(f2, fbn)
                .unwrap()
                .same_content(&Block::Synthetic(fbn * 3)),
            "fbn {fbn}"
        );
    }
    assert_eq!(fs.stat(f2).unwrap().size, n * 4096);
}

#[test]
fn truncating_a_large_file_frees_indirect_territory() {
    let mut fs = Wafl::format(volume(), WaflConfig::default()).unwrap();
    let f = fs
        .create(INO_ROOT, "shrink", FileType::File, Attrs::default())
        .unwrap();
    for fbn in 0..1200u64 {
        fs.write_fbn(f, fbn, Block::Synthetic(fbn)).unwrap();
    }
    fs.cp().unwrap();
    let used_before = fs.active_blocks();
    fs.set_size(f, 10 * 4096).unwrap();
    fs.cp().unwrap();
    let used_after = fs.active_blocks();
    assert!(
        used_before - used_after > 1100,
        "freed only {} blocks",
        used_before - used_after
    );
    // And the file still works after a crash.
    let mut fs = remount(fs);
    let f2 = fs.namei("/shrink").unwrap();
    assert_eq!(fs.stat(f2).unwrap().size, 10 * 4096);
    assert!(fs
        .read_fbn(f2, 3)
        .unwrap()
        .same_content(&Block::Synthetic(3)));
}

#[test]
fn mount_survives_one_corrupt_fsinfo_copy() {
    let mut fs = Wafl::format(volume(), WaflConfig::default()).unwrap();
    let f = fs
        .create(INO_ROOT, "f", FileType::File, Attrs::default())
        .unwrap();
    fs.write_fbn(f, 0, Block::Synthetic(42)).unwrap();
    fs.cp().unwrap();
    let (mut vol, nv) = fs.crash();
    // Torn write on the first fsinfo copy.
    vol.write_block(0, Block::Synthetic(0xbad)).unwrap();
    let mut fs = Wafl::mount(
        vol,
        nv,
        WaflConfig::default(),
        Meter::new_shared(),
        CostModel::zero(),
    )
    .expect("second copy must save the mount");
    let f2 = fs.namei("/f").unwrap();
    assert!(fs
        .read_fbn(f2, 0)
        .unwrap()
        .same_content(&Block::Synthetic(42)));
}

#[test]
fn mount_fails_cleanly_with_both_copies_gone() {
    let mut fs = Wafl::format(volume(), WaflConfig::default()).unwrap();
    fs.cp().unwrap();
    let (mut vol, nv) = fs.crash();
    vol.write_block(0, Block::Synthetic(1)).unwrap();
    vol.write_block(1, Block::Synthetic(2)).unwrap();
    let res = Wafl::mount(
        vol,
        nv,
        WaflConfig::default(),
        Meter::new_shared(),
        CostModel::zero(),
    );
    match res {
        Err(wafl::WaflError::BadImage { .. }) => {}
        Err(other) => panic!("wrong error: {other}"),
        Ok(_) => panic!("must not mount"),
    }
}
