//! Modelled CPU costs of file system code paths.
//!
//! The functional layer executes for real; these constants are the CPU
//! seconds each code path charges to the shared [`simkit::meter::Meter`].
//! They are calibrated so that, fed through the fluid solver with the
//! paper's device rates, the stage CPU utilizations land where Table 3
//! measured them on the 500 MHz Alpha filer (logical dump ≈ 25 % while
//! tape-bound; physical dump ≈ 5 %; logical restore 30–40 %; physical
//! restore ≈ 11 %). See `bench::calibrate` for the derivation.
//!
//! Every cost is per *event* (per block, per file, per directory entry) so
//! the totals scale with the workload rather than with wall-clock.

/// CPU cost table.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// File system read path per 4 KiB block (lookup, buffer handling).
    pub fs_read_block: f64,
    /// File system write path per 4 KiB block (allocation, COW
    /// bookkeeping, parity math share).
    pub fs_write_block: f64,
    /// NVRAM logging per operation.
    pub nvram_log_op: f64,
    /// Inode create/delete (directory insert, inode init).
    pub inode_op: f64,
    /// Per-component path lookup.
    pub lookup_component: f64,
    /// Consistency point fixed overhead.
    pub cp_fixed: f64,
    /// Consistency point per dirty metadata block serialized.
    pub cp_per_block: f64,
    /// Snapshot create/delete per block-map word touched.
    pub snap_per_word: f64,
    /// Raw block read through the RAID bypass per 4 KiB (image dump path —
    /// deliberately tiny: "it is all you can do to hold the hose").
    pub bypass_block: f64,
    /// Raw block write through the RAID bypass per 4 KiB (image restore;
    /// costs more than the read side because of parity maintenance).
    pub bypass_write_block: f64,
    /// Dump-format conversion per 4 KiB of file data (the "potentially
    /// expensive conversion of file system metadata into the standard
    /// format").
    pub dump_format_block: f64,
    /// Dump per-inode mapping/header work.
    pub dump_inode: f64,
    /// Dump per-directory work in phase III (entry serialization over
    /// scattered directory blocks).
    pub dump_dir: f64,
    /// Restore per-file creation work beyond the plain inode op.
    pub restore_file: f64,
}

impl CostModel {
    /// Calibrated for the paper's F630 (single 500 MHz CPU).
    ///
    /// Derivation anchors (see DESIGN.md §4 and `bench::calibrate`). All
    /// constants are per-event CPU costs chosen so that Table 3's measured
    /// utilizations emerge at the paper's stage rates (~2 200 blocks/s when
    /// a DLT-7000 is the bottleneck):
    ///
    /// - logical dump "files" stage ran at 25 % CPU → ≈ 110 µs per block of
    ///   read-path + format-conversion work;
    /// - physical dump ran at 5 % → ≈ 20 µs per block through the bypass;
    ///   physical restore at 11 % → ≈ 45 µs (parity maintenance);
    /// - logical restore "filling in data" at 40 % → ≈ 170 µs per block
    ///   across write path, NVRAM copy, format parse and CP amortization;
    /// - the resulting logical/physical CPU ratios land at the paper's
    ///   "5 times" (dump) and "more than 3 times" (restore).
    pub fn f630() -> CostModel {
        CostModel {
            fs_read_block: 50.0e-6,
            fs_write_block: 55.0e-6,
            nvram_log_op: 40.0e-6,
            inode_op: 90.0e-6,
            lookup_component: 6.0e-6,
            cp_fixed: 2.0e-3,
            cp_per_block: 25.0e-6,
            snap_per_word: 0.55e-9,
            bypass_block: 20.0e-6,
            bypass_write_block: 40.0e-6,
            dump_format_block: 55.0e-6,
            dump_inode: 100.0e-6,
            dump_dir: 2.75e-3,
            restore_file: 500.0e-6,
        }
    }

    /// All-zero costs for pure functional tests.
    pub fn zero() -> CostModel {
        CostModel {
            fs_read_block: 0.0,
            fs_write_block: 0.0,
            nvram_log_op: 0.0,
            inode_op: 0.0,
            lookup_component: 0.0,
            cp_fixed: 0.0,
            cp_per_block: 0.0,
            snap_per_word: 0.0,
            bypass_block: 0.0,
            bypass_write_block: 0.0,
            dump_format_block: 0.0,
            dump_inode: 0.0,
            dump_dir: 0.0,
            restore_file: 0.0,
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::f630()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_ratios_match_the_paper_shape() {
        let c = CostModel::f630();
        // Logical dump CPU per block (read + format) must be roughly 5x the
        // physical bypass cost — Table 3's "5 times the CPU resources".
        let logical = c.fs_read_block + c.dump_format_block;
        let physical = c.bypass_block;
        let ratio = logical / physical;
        assert!((4.0..9.0).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn zero_model_charges_nothing() {
        let c = CostModel::zero();
        assert_eq!(c.fs_read_block + c.fs_write_block + c.inode_op, 0.0);
    }

    #[test]
    fn snapshot_cost_lands_near_thirty_seconds_at_paper_scale() {
        // 188 GiB volume = ~49.3M words; at 50% CPU the paper saw ~30 s, so
        // the per-word cost must put plain CPU time near 15 s... The fixed
        // stage in the harness models the rest (bitmap I/O); just sanity
        // check the order of magnitude here.
        let c = CostModel::f630();
        let words = 188.0 * 1024.0 * 1024.0 * 1024.0 / 4096.0;
        let secs = words * c.snap_per_word;
        assert!(secs > 0.005 && secs < 60.0, "secs = {secs}");
    }
}
