//! The mounted file system: format, mount, consistency points, crash
//! recovery, block allocation.
//!
//! Invariants maintained here (and exercised by the crash tests):
//!
//! - Between consistency points the on-disk image is exactly the previous
//!   CP: no block referenced by it (or by any snapshot) is ever reused
//!   before the next fsinfo write. Blocks freed since the last completed CP
//!   sit in a "frozen" set the allocator skips.
//! - A consistency point serializes all dirty state bottom-up (directory
//!   blocks, file indirect blocks, inode-file blocks, snapshot/qtree
//!   tables, block-map blocks) into *newly allocated* blocks, then
//!   overwrites only the two fixed fsinfo locations.
//! - The NVRAM log holds every operation since the last CP; mount replays
//!   it, which is the entire crash-recovery story (no fsck).

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::rc::Rc;

use blockdev::Block;
use nvram::NvSized;
use nvram::NvramLog;
use raid::Volume;
use simkit::crash::CrashPoint;
use simkit::meter::Meter;

use crate::blkmap::BlkMap;
use crate::blkmap::BlockSet;
use crate::cost::CostModel;
use crate::error::WaflError;
use crate::ondisk;
use crate::ondisk::DiskInode;
use crate::ondisk::FsInfo;
use crate::ondisk::QtreeEntry;
use crate::ondisk::SnapEntry;
use crate::ondisk::TreeRoot;
use crate::ondisk::BLOCK_SIZE;
use crate::ondisk::FSINFO_BLOCKS;
use crate::types::Attrs;
use crate::types::FileType;
use crate::types::Ino;
use crate::types::WaflConfig;
use crate::types::INODES_PER_BLOCK;
use crate::types::INODE_SIZE;
use crate::types::INO_BLKMAP;
use crate::types::INO_ROOT;
use crate::types::NDIRECT;
use crate::types::PTRS_PER_BLOCK;

/// Number of blocks needed for `bytes`.
pub(crate) fn blocks_of(bytes: u64) -> u64 {
    bytes.div_ceil(BLOCK_SIZE as u64)
}

/// Which L1 indirect block (if any) maps `fbn`. Index 0 is the
/// single-indirect block; indices ≥ 1 are children of the double-indirect
/// block.
pub(crate) fn l1_index(fbn: u64) -> Option<usize> {
    let nd = NDIRECT as u64;
    if fbn < nd {
        None
    } else if fbn < nd + PTRS_PER_BLOCK {
        Some(0)
    } else {
        Some(1 + ((fbn - nd - PTRS_PER_BLOCK) / PTRS_PER_BLOCK) as usize)
    }
}

/// The file block range `[start, end)` covered by L1 block `i`.
pub(crate) fn l1_span(i: usize) -> (u64, u64) {
    let nd = NDIRECT as u64;
    if i == 0 {
        (nd, nd + PTRS_PER_BLOCK)
    } else {
        let start = nd + PTRS_PER_BLOCK + (i as u64 - 1) * PTRS_PER_BLOCK;
        (start, start + PTRS_PER_BLOCK)
    }
}

/// How many L1 blocks a file of `nslots` blocks needs.
pub(crate) fn l1_count(nslots: u64) -> usize {
    if nslots <= NDIRECT as u64 {
        0
    } else {
        // simlint: allow(D05) -- nslots > NDIRECT in this branch, so l1_index is Some by construction
        l1_index(nslots - 1).expect("nslots > NDIRECT") + 1
    }
}

/// A file's logical-to-physical block mapping (fbn → volume block; 0 means
/// hole).
#[derive(Debug, Clone, Default)]
pub(crate) struct FileTree {
    pub(crate) slots: Vec<u32>,
}

impl FileTree {
    pub(crate) fn get(&self, fbn: u64) -> u32 {
        self.slots.get(fbn as usize).copied().unwrap_or(0)
    }

    pub(crate) fn set(&mut self, fbn: u64, bno: u32) {
        if fbn as usize >= self.slots.len() {
            self.slots.resize(fbn as usize + 1, 0);
        }
        self.slots[fbn as usize] = bno;
    }

    pub(crate) fn nslots(&self) -> u64 {
        self.slots.len() as u64
    }
}

/// On-disk homes of a tree's indirect blocks (for freeing on rewrite).
#[derive(Debug, Clone, Default)]
pub(crate) struct TreeMeta {
    /// Home of each L1 indirect block (index 0 = single indirect).
    pub(crate) l1_homes: Vec<u32>,
    /// Home of the double-indirect block (0 = none).
    pub(crate) dind_home: u32,
}

/// The in-memory inode.
#[derive(Debug, Clone)]
pub(crate) struct InodeMem {
    pub(crate) ftype: FileType,
    pub(crate) attrs: Attrs,
    pub(crate) nlink: u16,
    pub(crate) qtree: u16,
    pub(crate) gen: u32,
    pub(crate) size: u64,
    pub(crate) tree: FileTree,
    pub(crate) meta: TreeMeta,
    /// Directory contents (None for regular files).
    pub(crate) dir: Option<BTreeMap<String, Ino>>,
    /// Directory contents changed since the last CP.
    pub(crate) dir_dirty: bool,
    /// File blocks whose mapping changed since the last CP.
    pub(crate) dirty_fbns: BTreeSet<u64>,
}

impl InodeMem {
    /// The directory map, or `WrongType`-flavored `Invalid` if this inode
    /// is not a directory (the `ftype == Dir` ⟺ `dir.is_some()` invariant).
    pub(crate) fn dir_ref(&self) -> Result<&BTreeMap<String, Ino>, WaflError> {
        self.dir.as_ref().ok_or(WaflError::Invalid {
            reason: "inode has no directory contents".into(),
        })
    }

    /// Mutable counterpart of [`InodeMem::dir_ref`].
    pub(crate) fn dir_mut(&mut self) -> Result<&mut BTreeMap<String, Ino>, WaflError> {
        self.dir.as_mut().ok_or(WaflError::Invalid {
            reason: "inode has no directory contents".into(),
        })
    }

    pub(crate) fn new_file(attrs: Attrs, qtree: u16, gen: u32) -> InodeMem {
        Self::new_leaf(FileType::File, attrs, qtree, gen)
    }

    /// A non-directory inode (regular file or symlink).
    pub(crate) fn new_leaf(ftype: FileType, attrs: Attrs, qtree: u16, gen: u32) -> InodeMem {
        debug_assert!(ftype != FileType::Dir);
        InodeMem {
            ftype,
            attrs,
            nlink: 1,
            qtree,
            gen,
            size: 0,
            tree: FileTree::default(),
            meta: TreeMeta::default(),
            dir: None,
            dir_dirty: false,
            dirty_fbns: BTreeSet::new(),
        }
    }

    pub(crate) fn new_dir(attrs: Attrs, qtree: u16, gen: u32) -> InodeMem {
        InodeMem {
            ftype: FileType::Dir,
            attrs,
            nlink: 2,
            qtree,
            gen,
            size: 0,
            tree: FileTree::default(),
            meta: TreeMeta::default(),
            dir: Some(BTreeMap::new()),
            dir_dirty: true,
            dirty_fbns: BTreeSet::new(),
        }
    }

    /// Builds the on-disk form. Direct pointers come from the tree; the
    /// indirect homes from the tree metadata.
    pub(crate) fn to_disk(&self) -> DiskInode {
        let mut direct = [0u32; NDIRECT];
        for (i, d) in direct.iter_mut().enumerate() {
            *d = self.tree.get(i as u64);
        }
        DiskInode {
            ftype: Some(self.ftype),
            attrs: self.attrs.clone(),
            nlink: self.nlink,
            qtree: self.qtree,
            gen: self.gen,
            root: TreeRoot {
                size: self.size,
                direct,
                indirect: self.meta.l1_homes.first().copied().unwrap_or(0),
                dindirect: self.meta.dind_home,
            },
        }
    }
}

/// Operations recorded in NVRAM between consistency points.
#[derive(Debug, Clone)]
pub enum LoggedOp {
    /// Create a file or directory.
    Create {
        /// Parent directory.
        parent: Ino,
        /// New entry name.
        name: String,
        /// Kind.
        ftype: FileType,
        /// Initial attributes.
        attrs: Attrs,
    },
    /// Remove a file or (empty) directory.
    Remove {
        /// Parent directory.
        parent: Ino,
        /// Entry name.
        name: String,
    },
    /// Rename/move an entry.
    Rename {
        /// Source directory.
        from_parent: Ino,
        /// Source name.
        from_name: String,
        /// Destination directory.
        to_parent: Ino,
        /// Destination name.
        to_name: String,
    },
    /// Write one block of a file.
    Write {
        /// Target file.
        ino: Ino,
        /// File block number.
        fbn: u64,
        /// Payload.
        block: Block,
    },
    /// Set the byte size (truncating or extending with a hole).
    SetSize {
        /// Target file.
        ino: Ino,
        /// New size in bytes.
        size: u64,
    },
    /// Replace attributes.
    SetAttrs {
        /// Target inode.
        ino: Ino,
        /// New attributes.
        attrs: Attrs,
    },
    /// Create a qtree.
    CreateQtree {
        /// Qtree name (also the directory name under the root).
        name: String,
        /// Byte limit (0 = unlimited).
        limit_bytes: u64,
    },
    /// Create a symbolic link.
    Symlink {
        /// Parent directory.
        parent: Ino,
        /// Link name.
        name: String,
        /// Link target path.
        target: String,
        /// Initial attributes.
        attrs: Attrs,
    },
    /// Add a hard link to an existing file.
    Link {
        /// Directory receiving the new name.
        parent: Ino,
        /// The new name.
        name: String,
        /// The linked inode.
        ino: Ino,
    },
}

impl NvSized for LoggedOp {
    fn nv_bytes(&self) -> u64 {
        match self {
            LoggedOp::Write { .. } => 64 + BLOCK_SIZE as u64,
            LoggedOp::Create { name, .. } | LoggedOp::Remove { name, .. } => 64 + name.len() as u64,
            LoggedOp::Rename {
                from_name, to_name, ..
            } => 64 + (from_name.len() + to_name.len()) as u64,
            LoggedOp::SetSize { .. } => 64,
            LoggedOp::SetAttrs { attrs, .. } => {
                64 + attrs.nt_acl.as_ref().map(|a| a.len() as u64).unwrap_or(0)
            }
            LoggedOp::CreateQtree { name, .. } => 64 + name.len() as u64,
            LoggedOp::Symlink { name, target, .. } => 64 + (name.len() + target.len()) as u64,
            LoggedOp::Link { name, .. } => 64 + name.len() as u64,
        }
    }
}

/// The mounted file system.
pub struct Wafl {
    pub(crate) vol: Volume,
    pub(crate) meter: Rc<Meter>,
    pub(crate) costs: CostModel,
    pub(crate) cfg: WaflConfig,
    pub(crate) nv: NvramLog<LoggedOp>,
    pub(crate) cp_count: u64,
    pub(crate) tick: u64,
    pub(crate) next_ino: Ino,
    pub(crate) next_gen: u32,
    pub(crate) next_qtree: u16,
    pub(crate) inodes: Vec<Option<InodeMem>>,
    pub(crate) blkmap: BlkMap,
    pub(crate) snapshots: Vec<SnapEntry>,
    pub(crate) qtrees: Vec<QtreeEntry>,
    pub(crate) inofile_tree: FileTree,
    pub(crate) inofile_meta: TreeMeta,
    pub(crate) blkmap_tree: FileTree,
    pub(crate) blkmap_meta: TreeMeta,
    pub(crate) snaptable_bno: u32,
    pub(crate) qtree_bno: u32,
    pub(crate) dirty_inodes: BTreeSet<Ino>,
    pub(crate) frozen: BlockSet,
    pub(crate) alloc_cursor: u64,
    pub(crate) replaying: bool,
    /// Roots as of the last completed CP (captured by snapshots).
    pub(crate) last_inofile_root: TreeRoot,
}

impl Wafl {
    /// Creates a fresh, empty file system on the volume.
    pub fn format(vol: Volume, cfg: WaflConfig) -> Result<Wafl, WaflError> {
        let meter = Meter::new_shared();
        Wafl::format_with(vol, cfg, meter, CostModel::zero())
    }

    /// [`Wafl::format`] with an explicit meter and cost model (the
    /// benchmark harness uses this).
    pub fn format_with(
        vol: Volume,
        cfg: WaflConfig,
        meter: Rc<Meter>,
        costs: CostModel,
    ) -> Result<Wafl, WaflError> {
        let nblocks = vol.capacity();
        let mut blkmap = BlkMap::new(nblocks);
        for &b in &FSINFO_BLOCKS {
            blkmap.set_active(b);
        }
        let mut fs = Wafl {
            vol,
            meter,
            costs,
            nv: NvramLog::new(cfg.nvram_bytes),
            cfg,
            cp_count: 0,
            tick: 0,
            next_ino: 3,
            next_gen: 1,
            next_qtree: 1,
            inodes: vec![None; 3],
            blkmap,
            snapshots: Vec::new(),
            qtrees: Vec::new(),
            inofile_tree: FileTree::default(),
            inofile_meta: TreeMeta::default(),
            blkmap_tree: FileTree::default(),
            blkmap_meta: TreeMeta::default(),
            snaptable_bno: 0,
            qtree_bno: 0,
            dirty_inodes: BTreeSet::new(),
            frozen: BlockSet::new(),
            alloc_cursor: 2,
            replaying: false,
            last_inofile_root: TreeRoot::default(),
        };
        // The block-map metadata file (inode 1). Its pointers live in
        // fsinfo; the inode exists so tools see the file.
        let mut blkmap_inode = InodeMem::new_file(Attrs::default(), 0, 0);
        blkmap_inode.size = fs.blkmap.nchunks() * BLOCK_SIZE as u64;
        fs.inodes[INO_BLKMAP as usize] = Some(blkmap_inode);
        // The root directory (inode 2).
        fs.inodes[INO_ROOT as usize] = Some(InodeMem::new_dir(
            Attrs {
                perm: 0o755,
                ..Attrs::default()
            },
            0,
            0,
        ));
        fs.dirty_inodes.insert(INO_BLKMAP);
        fs.dirty_inodes.insert(INO_ROOT);
        fs.blkmap.mark_all_dirty();
        fs.cp()?;
        Ok(fs)
    }

    /// Mounts an existing file system, replaying any NVRAM log.
    ///
    /// This is the crash-recovery path: the object model is rebuilt purely
    /// from the on-disk image (latest valid fsinfo wins), then the logged
    /// operations are re-applied and committed.
    pub fn mount(
        vol: Volume,
        nv: NvramLog<LoggedOp>,
        cfg: WaflConfig,
        meter: Rc<Meter>,
        costs: CostModel,
    ) -> Result<Wafl, WaflError> {
        let mut vol = vol;
        // Pick the valid fsinfo with the highest cp_count.
        let mut best: Option<FsInfo> = None;
        for &b in &FSINFO_BLOCKS {
            if let Ok(block) = vol.read_block(b) {
                if let Ok(fi) = FsInfo::from_block(&block) {
                    if best
                        .as_ref()
                        .map(|o| fi.cp_count > o.cp_count)
                        .unwrap_or(true)
                    {
                        best = Some(fi);
                    }
                }
            }
        }
        let fi = best.ok_or_else(|| WaflError::BadImage {
            reason: "no valid fsinfo copy".into(),
        })?;
        if fi.nblocks != vol.capacity() {
            return Err(WaflError::BadImage {
                reason: format!(
                    "volume is {} blocks but fsinfo says {}",
                    vol.capacity(),
                    fi.nblocks
                ),
            });
        }

        // Block map.
        let (bm_tree, bm_meta) = read_tree(&mut vol, &fi.blkmapfile)?;
        let mut words = Vec::with_capacity(fi.nblocks as usize);
        for chunk in 0..blocks_of(fi.blkmapfile.size) {
            let bno = bm_tree.get(chunk);
            let block = vol.read_block(bno as u64)?;
            words.extend(ondisk::ptrs_from_block(&block));
        }
        words.truncate(fi.nblocks as usize);
        if words.len() < fi.nblocks as usize {
            return Err(WaflError::BadImage {
                reason: "block map shorter than volume".into(),
            });
        }
        let blkmap = BlkMap::from_words(words);

        // Inode file.
        let (ino_tree, ino_meta) = read_tree(&mut vol, &fi.inofile)?;
        let n_inodes = (fi.inofile.size / INODE_SIZE as u64) as usize;
        let mut inodes: Vec<Option<InodeMem>> = vec![None; n_inodes.max(3)];
        let mut max_gen = 0;
        for blk_idx in 0..blocks_of(fi.inofile.size) {
            let bno = ino_tree.get(blk_idx);
            if bno == 0 {
                continue;
            }
            let block = vol.read_block(bno as u64)?;
            let bytes = block.materialize();
            for slot in 0..INODES_PER_BLOCK {
                let ino = blk_idx * INODES_PER_BLOCK + slot;
                if ino as usize >= n_inodes {
                    break;
                }
                let off = (slot as usize) * INODE_SIZE;
                let di = DiskInode::read_from(&bytes[off..off + INODE_SIZE]);
                let Some(ftype) = di.ftype else { continue };
                max_gen = max_gen.max(di.gen);
                let (tree, meta) = if ino == INO_BLKMAP as u64 {
                    (FileTree::default(), TreeMeta::default())
                } else {
                    read_tree(&mut vol, &di.root)?
                };
                let dir = if ftype == FileType::Dir {
                    let mut entries = BTreeMap::new();
                    for fbn in 0..blocks_of(di.root.size) {
                        let dbno = tree.get(fbn);
                        if dbno == 0 {
                            continue;
                        }
                        let dblock = vol.read_block(dbno as u64)?;
                        for (name, child) in ondisk::dir_from_block(&dblock) {
                            entries.insert(name, child);
                        }
                    }
                    Some(entries)
                } else {
                    None
                };
                inodes[ino as usize] = Some(InodeMem {
                    ftype,
                    attrs: di.attrs,
                    nlink: di.nlink,
                    qtree: di.qtree,
                    gen: di.gen,
                    size: di.root.size,
                    tree,
                    meta,
                    dir,
                    dir_dirty: false,
                    dirty_fbns: BTreeSet::new(),
                });
            }
        }

        let snapshots = if fi.snaptable_bno != 0 {
            ondisk::snaptable_from_block(&vol.read_block(fi.snaptable_bno as u64)?)
        } else {
            Vec::new()
        };
        let qtrees = if fi.qtree_bno != 0 {
            ondisk::qtrees_from_block(&vol.read_block(fi.qtree_bno as u64)?)
        } else {
            Vec::new()
        };
        let next_qtree = qtrees.iter().map(|q| q.id + 1).max().unwrap_or(1);

        let mut fs = Wafl {
            vol,
            meter,
            costs,
            nv,
            cfg,
            cp_count: fi.cp_count,
            tick: fi.tick,
            next_ino: fi.next_ino,
            next_gen: max_gen + 1,
            next_qtree,
            inodes,
            blkmap,
            snapshots,
            qtrees,
            inofile_tree: ino_tree,
            inofile_meta: ino_meta,
            blkmap_tree: bm_tree,
            blkmap_meta: bm_meta,
            snaptable_bno: fi.snaptable_bno,
            qtree_bno: fi.qtree_bno,
            dirty_inodes: BTreeSet::new(),
            frozen: BlockSet::new(),
            alloc_cursor: 2,
            replaying: false,
            last_inofile_root: fi.inofile.clone(),
        };
        // Clear any dirt produced while rebuilding the map.
        fs.blkmap.take_dirty();

        // Replay the NVRAM log (the crash-recovery step).
        let ops = fs.nv.drain_for_replay();
        if !ops.is_empty() {
            obs::counter("crash.replays").inc();
            obs::counter("crash.replayed_ops").add(ops.len() as u64);
            fs.replaying = true;
            for op in ops {
                // Replay is best-effort per entry: an op that already
                // reached disk via the last CP (log-then-apply ordering
                // admits at most the final op) fails benignly.
                let _ = fs.apply_logged(op);
            }
            fs.replaying = false;
            fs.cp()?;
        }
        Ok(fs)
    }

    /// Simulates a crash: the in-memory state evaporates; the volume and
    /// the (non-volatile) log survive.
    pub fn crash(self) -> (Volume, NvramLog<LoggedOp>) {
        (self.vol, self.nv)
    }

    /// Re-applies a logged operation (crash replay).
    pub(crate) fn apply_logged(&mut self, op: LoggedOp) -> Result<(), WaflError> {
        match op {
            LoggedOp::Create {
                parent,
                name,
                ftype,
                attrs,
            } => self.create(parent, &name, ftype, attrs).map(|_| ()),
            LoggedOp::Remove { parent, name } => self.remove(parent, &name),
            LoggedOp::Rename {
                from_parent,
                from_name,
                to_parent,
                to_name,
            } => self.rename(from_parent, &from_name, to_parent, &to_name),
            LoggedOp::Write { ino, fbn, block } => self.write_fbn(ino, fbn, block),
            LoggedOp::SetSize { ino, size } => self.set_size(ino, size),
            LoggedOp::SetAttrs { ino, attrs } => self.set_attrs(ino, attrs),
            LoggedOp::CreateQtree { name, limit_bytes } => {
                self.create_qtree(&name, limit_bytes).map(|_| ())
            }
            LoggedOp::Symlink {
                parent,
                name,
                target,
                attrs,
            } => self
                .create_symlink(parent, &name, &target, attrs)
                .map(|_| ()),
            LoggedOp::Link { parent, name, ino } => self.link(parent, &name, ino),
        }
    }

    /// Records an operation in NVRAM, taking a consistency point first if
    /// the log is out of space.
    pub(crate) fn log_op(&mut self, op: LoggedOp) -> Result<(), WaflError> {
        if self.replaying {
            return Ok(());
        }
        self.meter.charge_cpu(self.costs.nvram_log_op);
        match self.nv.append(op) {
            Ok(()) => Ok(()),
            Err(nvram::NvramError::Full) => {
                // Shouldn't normally happen thanks to the watermark, but a
                // burst of large ops can fill the log between checks.
                Err(WaflError::Invalid {
                    reason: "nvram full; consistency point required".into(),
                })
            }
            Err(nvram::NvramError::Disabled) => Ok(()),
            Err(e) => Err(WaflError::Invalid {
                reason: format!("nvram log append failed: {e}"),
            }),
        }
    }

    /// Runs a consistency point if the NVRAM watermark says so.
    pub(crate) fn maybe_auto_cp(&mut self) -> Result<(), WaflError> {
        if !self.replaying && self.cfg.auto_cp_on_watermark && self.nv.is_half_full() {
            self.cp()?;
        }
        Ok(())
    }

    /// Advances the logical clock and returns the new tick.
    pub(crate) fn bump_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Allocates a free block (write-anywhere: next free block at or after
    /// the moving cursor).
    pub(crate) fn alloc_block(&mut self) -> Result<u64, WaflError> {
        let n = self.blkmap.nblocks();
        let cursor = if self.alloc_cursor >= n {
            2
        } else {
            self.alloc_cursor
        };
        // Scan [cursor, n) then wrap to [2, cursor), a word at a time.
        let found = self
            .blkmap
            .find_free(cursor, n, &self.frozen)
            .or_else(|| self.blkmap.find_free(2, cursor, &self.frozen));
        match found {
            Some(bno) => {
                self.alloc_cursor = bno + 1;
                self.blkmap.set_active(bno);
                Ok(bno)
            }
            None => Err(WaflError::NoSpace),
        }
    }

    /// Releases a block from the active file system. It stays unavailable
    /// for reuse until the next CP completes (and forever if a snapshot
    /// still holds it).
    pub(crate) fn free_block(&mut self, bno: u64) {
        self.blkmap.clear_active(bno);
        self.frozen.insert(bno);
    }

    /// Free blocks remaining.
    pub fn free_blocks(&self) -> u64 {
        self.blkmap.count_free()
    }

    /// Blocks used by the active file system.
    pub fn active_blocks(&self) -> u64 {
        self.blkmap.count_plane(0)
    }

    /// The shared CPU meter.
    pub fn meter(&self) -> Rc<Meter> {
        Rc::clone(&self.meter)
    }

    /// The CPU cost model in force.
    pub fn costs(&self) -> &CostModel {
        &self.costs
    }

    /// Direct access to the volume (the RAID bypass used by image
    /// dump/restore and by fault-injection tests).
    pub fn volume_mut(&mut self) -> &mut Volume {
        &mut self.vol
    }

    /// Read-only view of the volume geometry and counters.
    pub fn volume(&self) -> &Volume {
        &self.vol
    }

    /// The in-memory block map (current plane state).
    pub fn blkmap(&self) -> &BlkMap {
        &self.blkmap
    }

    /// Completed consistency points.
    pub fn cp_count(&self) -> u64 {
        self.cp_count
    }

    /// The logical clock.
    pub fn now(&self) -> u64 {
        self.tick
    }

    /// NVRAM log introspection (tests and the restore path use this).
    pub fn nvram(&self) -> &NvramLog<LoggedOp> {
        &self.nv
    }

    /// Mutable NVRAM access (logical restore can bypass logging; paper
    /// footnote 2 notes this is legitimate because an interrupted restore
    /// simply restarts).
    pub fn nvram_mut(&mut self) -> &mut NvramLog<LoggedOp> {
        &mut self.nv
    }

    /// Takes a consistency point: serializes all dirty state and commits
    /// it with an fsinfo write.
    pub fn cp(&mut self) -> Result<(), WaflError> {
        self.cp_inner(true)
    }

    /// A consistency point that stops just before the fsinfo write —
    /// *only* for crash-during-CP tests: everything is serialized to fresh
    /// blocks but the commit record never lands.
    pub fn cp_without_fsinfo(&mut self) -> Result<(), WaflError> {
        self.cp_inner(false)
    }

    /// Asks the armed [`simkit::crash::CrashPlan`] (if any) whether the
    /// power dies *now*, at `point`. A fresh trip counts once on the
    /// `crash.trips` obs counter; a machine that already died keeps
    /// failing without recounting. Inert when nothing is armed.
    fn power_check(point: CrashPoint) -> Result<(), WaflError> {
        let was_alive = simkit::crash::tripped().is_none();
        if simkit::crash::fire(point) {
            if was_alive {
                obs::counter("crash.trips").inc();
            }
            return Err(WaflError::PowerLoss { point });
        }
        Ok(())
    }

    fn cp_inner(&mut self, write_fsinfo: bool) -> Result<(), WaflError> {
        obs::counter("wafl.consistency_points").inc();
        self.meter.charge_cpu(self.costs.cp_fixed);
        let mut blocks_written = 0u64;

        // 1. Serialize dirty directories into fresh blocks.
        let dirty: Vec<Ino> = self.dirty_inodes.iter().copied().collect();
        for &ino in &dirty {
            if self
                .inodes
                .get(ino as usize)
                .and_then(|s| s.as_ref())
                .map(|i| i.dir_dirty)
                .unwrap_or(false)
            {
                blocks_written += self.serialize_dir(ino)?;
            }
        }

        // Crash depth 1: some new directory blocks are on disk, nothing
        // points at them yet.
        Self::power_check(CrashPoint::CpCommit)?;

        // 2. Rewrite dirty L1 indirect blocks of every dirty inode.
        for &ino in &dirty {
            if self
                .inodes
                .get(ino as usize)
                .and_then(|s| s.as_ref())
                .is_some()
            {
                blocks_written += self.rewrite_file_indirects(ino)?;
            }
        }

        // 3. Rewrite the inode-file blocks containing dirty inodes.
        blocks_written += self.rewrite_inofile(&dirty)?;

        // Crash depth 2: the new inode file exists but fsinfo still
        // points at the previous one.
        Self::power_check(CrashPoint::CpCommit)?;

        // 4. Snapshot and qtree tables.
        {
            let entries = self.snapshots.clone();
            let block = ondisk::snaptable_to_block(&entries);
            let new = self.alloc_block()?;
            self.vol.write_block(new, block)?;
            if self.snaptable_bno != 0 {
                self.free_block(self.snaptable_bno as u64);
            }
            self.snaptable_bno = new as u32;
            blocks_written += 1;
        }
        {
            let entries = self.qtrees.clone();
            let block = ondisk::qtrees_to_block(&entries);
            let new = self.alloc_block()?;
            self.vol.write_block(new, block)?;
            if self.qtree_bno != 0 {
                self.free_block(self.qtree_bno as u64);
            }
            self.qtree_bno = new as u32;
            blocks_written += 1;
        }

        // 5. Block map: fixed-point home allocation, then serialization.
        let mut chunk_homes: BTreeMap<u64, u32> = BTreeMap::new();
        let mut tree_homes_done = false;
        loop {
            let newly = self.blkmap.take_dirty();
            let fresh: Vec<u64> = newly
                .into_iter()
                .filter(|c| !chunk_homes.contains_key(c))
                .collect();
            if !fresh.is_empty() {
                for chunk in fresh {
                    let old = self.blkmap_tree.get(chunk);
                    let new = self.alloc_block()?;
                    if old != 0 {
                        self.free_block(old as u64);
                    }
                    chunk_homes.insert(chunk, new as u32);
                }
                continue;
            }
            if !tree_homes_done {
                // Fresh homes for the block-map file's own indirect blocks.
                let nslots = self.blkmap.nchunks();
                let need = l1_count(nslots);
                let mut new_l1 = Vec::with_capacity(need);
                for _ in 0..need {
                    new_l1.push(self.alloc_block()? as u32);
                }
                let new_dind = if need > 1 {
                    self.alloc_block()? as u32
                } else {
                    0
                };
                let old_l1 = std::mem::take(&mut self.blkmap_meta.l1_homes);
                for old in old_l1 {
                    if old != 0 {
                        self.free_block(old as u64);
                    }
                }
                if self.blkmap_meta.dind_home != 0 {
                    self.free_block(self.blkmap_meta.dind_home as u64);
                }
                self.blkmap_meta = TreeMeta {
                    l1_homes: new_l1,
                    dind_home: new_dind,
                };
                tree_homes_done = true;
                continue;
            }
            break;
        }
        // All mutation done: serialize the final words and pointers.
        for (&chunk, &home) in &chunk_homes {
            self.blkmap_tree.set(chunk, home);
        }
        for (&chunk, &home) in &chunk_homes {
            let words = self.blkmap.chunk_words(chunk);
            self.vol
                .write_block(home as u64, ondisk::ptrs_to_block(&words))?;
            blocks_written += 1;
        }
        blocks_written +=
            self.write_tree_indirects(&self.blkmap_tree.slots.clone(), &self.blkmap_meta.clone())?;

        self.meter
            .charge_cpu(self.costs.cp_per_block * blocks_written as f64);

        if !write_fsinfo {
            return Ok(());
        }

        // Crash depth 3: the entire new tree is on disk — every block of
        // it unreachable until the fsinfo write below.
        Self::power_check(CrashPoint::CpCommit)?;

        // 6. Commit: the only in-place writes in the system.
        let inofile_root = self.tree_root_of(&self.inofile_tree, &self.inofile_meta, {
            self.next_ino as u64 * INODE_SIZE as u64
        });
        let blkmap_root = self.tree_root_of(&self.blkmap_tree, &self.blkmap_meta, {
            self.blkmap.nchunks() * BLOCK_SIZE as u64
        });
        self.cp_count += 1;
        let fi = FsInfo {
            cp_count: self.cp_count,
            nblocks: self.blkmap.nblocks(),
            next_ino: self.next_ino,
            snaptable_bno: self.snaptable_bno,
            qtree_bno: self.qtree_bno,
            tick: self.tick,
            inofile: inofile_root.clone(),
            blkmapfile: blkmap_root,
        };
        let block = fi.to_block();
        for (i, &b) in FSINFO_BLOCKS.iter().enumerate() {
            if i > 0 {
                // Crash depth 4: torn commit — one fsinfo copy carries the
                // new cp_count, the other the old. Mount takes the valid
                // copy with the highest cp_count, so this lands post-CP.
                Self::power_check(CrashPoint::CpCommit)?;
            }
            self.vol.write_block(b, block.clone())?;
        }
        self.vol.sync()?;
        self.last_inofile_root = inofile_root;

        // 7. The old image is gone; frozen blocks become reusable and the
        // log is committed. A crash plan tripping inside `commit` models
        // power loss after the CP landed but before the NVRAM flush: the
        // log keeps its (already-applied) entries for reboot to replay.
        self.frozen.clear();
        let was_alive = simkit::crash::tripped().is_none();
        if !self.nv.commit() {
            if was_alive {
                obs::counter("crash.trips").inc();
            }
            return Err(WaflError::PowerLoss {
                point: CrashPoint::NvramFlush,
            });
        }
        for &ino in &dirty {
            if let Some(Some(inode)) = self.inodes.get_mut(ino as usize) {
                inode.dir_dirty = false;
                inode.dirty_fbns.clear();
            }
        }
        self.dirty_inodes.clear();
        Ok(())
    }

    /// Builds a [`TreeRoot`] from an in-memory tree + meta.
    fn tree_root_of(&self, tree: &FileTree, meta: &TreeMeta, size: u64) -> TreeRoot {
        let mut direct = [0u32; NDIRECT];
        for (i, d) in direct.iter_mut().enumerate() {
            *d = tree.get(i as u64);
        }
        TreeRoot {
            size,
            direct,
            indirect: meta.l1_homes.first().copied().unwrap_or(0),
            dindirect: meta.dind_home,
        }
    }

    /// Packs a dirty directory's entries into fresh blocks.
    fn serialize_dir(&mut self, ino: Ino) -> Result<u64, WaflError> {
        let (blocks, old_slots) = {
            let inode = self.inode(ino)?;
            let dir = inode.dir_ref()?;
            let blocks = ondisk::dir_to_blocks(dir.iter().map(|(n, i)| (n.as_str(), *i)));
            (blocks, inode.tree.slots.clone())
        };
        let mut written = 0;
        let mut new_slots = Vec::with_capacity(blocks.len());
        for block in blocks {
            let bno = self.alloc_block()?;
            self.vol.write_block(bno, block)?;
            new_slots.push(bno as u32);
            written += 1;
        }
        for old in old_slots {
            if old != 0 {
                self.free_block(old as u64);
            }
        }
        let inode = self.inode_mut(ino)?;
        inode.size = new_slots.len() as u64 * BLOCK_SIZE as u64;
        let nslots = new_slots.len() as u64;
        inode.tree.slots = {
            let mut v = vec![0u32; nslots as usize];
            v.copy_from_slice(&new_slots);
            v
        };
        // Every mapping changed.
        inode.dirty_fbns = (0..nslots).collect();
        Ok(written)
    }

    /// Rewrites the L1 (and if needed L2) indirect blocks of a file whose
    /// mappings changed.
    fn rewrite_file_indirects(&mut self, ino: Ino) -> Result<u64, WaflError> {
        let (dirty_l1s, nslots, slots, mut meta) = {
            let inode = self.inode(ino)?;
            let nslots = inode.tree.nslots();
            let mut dirty: BTreeSet<usize> = BTreeSet::new();
            for &fbn in &inode.dirty_fbns {
                if let Some(i) = l1_index(fbn) {
                    dirty.insert(i);
                }
            }
            (dirty, nslots, inode.tree.slots.clone(), inode.meta.clone())
        };
        let need = l1_count(nslots);
        // Shrink: free homes beyond the needed count.
        let mut dind_dirty = false;
        while meta.l1_homes.len() > need {
            let Some(old) = meta.l1_homes.pop() else {
                break;
            };
            if old != 0 {
                self.free_block(old as u64);
            }
            dind_dirty = true;
        }
        while meta.l1_homes.len() < need {
            meta.l1_homes.push(0);
            dind_dirty = true;
        }
        let mut written = 0;
        for i in dirty_l1s {
            if i >= need {
                continue; // truncated away
            }
            let (start, end) = l1_span(i);
            let mut ptrs = vec![0u32; PTRS_PER_BLOCK as usize];
            for fbn in start..end.min(nslots) {
                ptrs[(fbn - start) as usize] = slots[fbn as usize];
            }
            let new = self.alloc_block()?;
            self.vol.write_block(new, ondisk::ptrs_to_block(&ptrs))?;
            let old = meta.l1_homes[i];
            if old != 0 {
                self.free_block(old as u64);
            }
            meta.l1_homes[i] = new as u32;
            written += 1;
            if i >= 1 {
                dind_dirty = true;
            }
        }
        // The double-indirect block lists homes of L1s 1...
        if need > 1 {
            if dind_dirty || meta.dind_home == 0 {
                let ptrs: Vec<u32> = meta.l1_homes[1..].to_vec();
                let new = self.alloc_block()?;
                self.vol.write_block(new, ondisk::ptrs_to_block(&ptrs))?;
                if meta.dind_home != 0 {
                    self.free_block(meta.dind_home as u64);
                }
                meta.dind_home = new as u32;
                written += 1;
            }
        } else if meta.dind_home != 0 {
            self.free_block(meta.dind_home as u64);
            meta.dind_home = 0;
        }
        self.inode_mut(ino)?.meta = meta;
        Ok(written)
    }

    /// Rewrites inode-file blocks containing dirty inodes, then all of the
    /// inode file's indirect blocks.
    fn rewrite_inofile(&mut self, dirty: &[Ino]) -> Result<u64, WaflError> {
        let mut written = 0;
        let needed_blocks = (self.next_ino as u64).div_ceil(INODES_PER_BLOCK);
        let mut dirty_blocks: BTreeSet<u64> =
            dirty.iter().map(|&i| i as u64 / INODES_PER_BLOCK).collect();
        // Newly needed inofile blocks (growth) must be written too.
        for b in self.inofile_tree.nslots()..needed_blocks {
            dirty_blocks.insert(b);
        }
        for blk_idx in dirty_blocks {
            let mut buf = vec![0u8; BLOCK_SIZE];
            for slot in 0..INODES_PER_BLOCK {
                let ino = blk_idx * INODES_PER_BLOCK + slot;
                let off = slot as usize * INODE_SIZE;
                let di = match self.inodes.get(ino as usize).and_then(|s| s.as_ref()) {
                    Some(inode) => inode.to_disk(),
                    None => DiskInode::free(),
                };
                di.write_to(&mut buf[off..off + INODE_SIZE]);
            }
            let new = self.alloc_block()?;
            self.vol.write_block(new, Block::from_bytes(&buf))?;
            let old = self.inofile_tree.get(blk_idx);
            if old != 0 {
                self.free_block(old as u64);
            }
            self.inofile_tree.set(blk_idx, new as u32);
            written += 1;
        }
        // Fresh homes for all inode-file indirect blocks (cheap: the inode
        // file is small relative to data).
        let need = l1_count(self.inofile_tree.nslots());
        let mut new_meta = TreeMeta {
            l1_homes: Vec::with_capacity(need),
            dind_home: 0,
        };
        for _ in 0..need {
            new_meta.l1_homes.push(self.alloc_block()? as u32);
        }
        if need > 1 {
            new_meta.dind_home = self.alloc_block()? as u32;
        }
        let old_l1 = std::mem::take(&mut self.inofile_meta.l1_homes);
        for old in old_l1 {
            if old != 0 {
                self.free_block(old as u64);
            }
        }
        if self.inofile_meta.dind_home != 0 {
            self.free_block(self.inofile_meta.dind_home as u64);
        }
        self.inofile_meta = new_meta;
        written += self
            .write_tree_indirects(&self.inofile_tree.slots.clone(), &self.inofile_meta.clone())?;
        Ok(written)
    }

    /// Writes the indirect blocks described by `meta` for `slots`.
    fn write_tree_indirects(&mut self, slots: &[u32], meta: &TreeMeta) -> Result<u64, WaflError> {
        let nslots = slots.len() as u64;
        let mut written = 0;
        for (i, &home) in meta.l1_homes.iter().enumerate() {
            if home == 0 {
                continue;
            }
            let (start, end) = l1_span(i);
            let mut ptrs = vec![0u32; PTRS_PER_BLOCK as usize];
            for fbn in start..end.min(nslots) {
                ptrs[(fbn - start) as usize] = slots[fbn as usize];
            }
            self.vol
                .write_block(home as u64, ondisk::ptrs_to_block(&ptrs))?;
            written += 1;
        }
        if meta.dind_home != 0 {
            let ptrs: Vec<u32> = meta
                .l1_homes
                .get(1..)
                .map(|s| s.to_vec())
                .unwrap_or_default();
            self.vol
                .write_block(meta.dind_home as u64, ondisk::ptrs_to_block(&ptrs))?;
            written += 1;
        }
        Ok(written)
    }
}

/// Parses a file tree from its on-disk root, reading indirect blocks
/// through the volume (mount and snapshot-view path).
pub(crate) fn read_tree(
    vol: &mut Volume,
    root: &TreeRoot,
) -> Result<(FileTree, TreeMeta), WaflError> {
    let nslots = blocks_of(root.size);
    let mut slots = vec![0u32; nslots as usize];
    for (i, slot) in slots
        .iter_mut()
        .enumerate()
        .take(NDIRECT.min(nslots as usize))
    {
        *slot = root.direct[i];
    }
    let mut meta = TreeMeta::default();
    if root.indirect != 0 {
        let ptrs = ondisk::ptrs_from_block(&vol.read_block(root.indirect as u64)?);
        let (start, end) = l1_span(0);
        for fbn in start..end.min(nslots) {
            slots[fbn as usize] = ptrs[(fbn - start) as usize];
        }
        meta.l1_homes.push(root.indirect);
    } else if nslots > NDIRECT as u64 {
        meta.l1_homes.push(0);
    }
    if root.dindirect != 0 {
        meta.dind_home = root.dindirect;
        let children = ondisk::ptrs_from_block(&vol.read_block(root.dindirect as u64)?);
        let n_children = l1_count(nslots).saturating_sub(1);
        for (child_idx, &child) in children.iter().enumerate().take(n_children) {
            meta.l1_homes.push(child);
            if child == 0 {
                continue;
            }
            let ptrs = ondisk::ptrs_from_block(&vol.read_block(child as u64)?);
            let (start, end) = l1_span(child_idx + 1);
            for fbn in start..end.min(nslots) {
                slots[fbn as usize] = ptrs[(fbn - start) as usize];
            }
        }
    }
    Ok((FileTree { slots }, meta))
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockdev::DiskPerf;
    use raid::VolumeGeometry;

    pub(crate) fn small_volume() -> Volume {
        Volume::new(VolumeGeometry::uniform(1, 4, 2048, DiskPerf::ideal()))
    }

    #[test]
    fn geometry_helpers_agree() {
        assert_eq!(l1_index(0), None);
        assert_eq!(l1_index(15), None);
        assert_eq!(l1_index(16), Some(0));
        assert_eq!(l1_index(1039), Some(0));
        assert_eq!(l1_index(1040), Some(1));
        assert_eq!(l1_index(1040 + 1024), Some(2));
        for i in 0..5 {
            let (start, end) = l1_span(i);
            assert_eq!(l1_index(start), Some(i));
            assert_eq!(l1_index(end - 1), Some(i));
            assert_eq!(end - start, PTRS_PER_BLOCK);
        }
        assert_eq!(l1_count(0), 0);
        assert_eq!(l1_count(16), 0);
        assert_eq!(l1_count(17), 1);
        assert_eq!(l1_count(1040), 1);
        assert_eq!(l1_count(1041), 2);
    }

    #[test]
    fn format_then_mount_empty_fs() {
        let fs = Wafl::format(small_volume(), WaflConfig::default()).unwrap();
        assert!(fs.cp_count() >= 1);
        let (vol, nv) = fs.crash();
        let fs2 = Wafl::mount(
            vol,
            nv,
            WaflConfig::default(),
            Meter::new_shared(),
            CostModel::zero(),
        )
        .unwrap();
        // Root exists and is an empty dir.
        let root = fs2.inodes[INO_ROOT as usize].as_ref().unwrap();
        assert_eq!(root.ftype, FileType::Dir);
        assert!(root.dir.as_ref().unwrap().is_empty());
    }

    #[test]
    fn file_tree_set_get_grows() {
        let mut t = FileTree::default();
        assert_eq!(t.get(10), 0);
        t.set(10, 99);
        assert_eq!(t.get(10), 99);
        assert_eq!(t.get(5), 0);
        assert_eq!(t.nslots(), 11);
    }

    #[test]
    fn blocks_of_rounds_up() {
        assert_eq!(blocks_of(0), 0);
        assert_eq!(blocks_of(1), 1);
        assert_eq!(blocks_of(4096), 1);
        assert_eq!(blocks_of(4097), 2);
    }

    #[test]
    fn logged_op_sizes_reflect_payload() {
        let w = LoggedOp::Write {
            ino: 5,
            fbn: 0,
            block: Block::Zero,
        };
        assert!(w.nv_bytes() > BLOCK_SIZE as u64);
        let c = LoggedOp::Create {
            parent: 2,
            name: "hello".into(),
            ftype: FileType::File,
            attrs: Attrs::default(),
        };
        assert_eq!(c.nv_bytes(), 69);
    }

    #[test]
    fn allocator_skips_frozen_blocks() {
        let mut fs = Wafl::format(small_volume(), WaflConfig::default()).unwrap();
        let a = fs.alloc_block().unwrap();
        fs.free_block(a);
        // Even though the word is zero again, the block cannot be reused
        // until a CP commits the free.
        fs.alloc_cursor = a; // force the cursor back
        let b = fs.alloc_block().unwrap();
        assert_ne!(a, b);
        fs.cp().unwrap();
        fs.alloc_cursor = a;
        let c = fs.alloc_block().unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn fsinfo_written_redundantly() {
        let mut fs = Wafl::format(small_volume(), WaflConfig::default()).unwrap();
        fs.cp().unwrap();
        let b0 = fs.vol.read_block(0).unwrap();
        let b1 = fs.vol.read_block(1).unwrap();
        assert!(b0.same_content(&b1));
        let fi = FsInfo::from_block(&b0).unwrap();
        assert_eq!(fi.cp_count, fs.cp_count());
    }
}
