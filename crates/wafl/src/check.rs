//! File system consistency checking.
//!
//! WAFL famously needs no `fsck` after a crash — but the *reproduction*
//! needs a way to prove that. [`check`] walks the in-memory object model
//! (which mount rebuilt purely from disk) and cross-checks it against the
//! block map:
//!
//! - every block referenced by the active file system (file data, indirect
//!   blocks, inode-file blocks, block-map blocks, tables, fsinfo) must
//!   have its active bit set;
//! - no block may be referenced twice;
//! - the active plane must contain *exactly* the referenced set — a
//!   surplus is a leak, a deficit is corruption;
//! - directory entries must point at allocated inodes and link counts
//!   must match the tree.
//!
//! The crash-recovery and restore tests run this after every remount.

use std::collections::BTreeMap;

use crate::error::WaflError;
use crate::fs::Wafl;
use crate::ondisk::FSINFO_BLOCKS;
use crate::types::FileType;
use crate::types::Ino;
use crate::types::INO_BLKMAP;
use crate::types::INO_ROOT;

/// The findings of a consistency check.
#[derive(Debug, Default)]
pub struct CheckReport {
    /// Blocks referenced by the active file system.
    pub referenced: u64,
    /// Problems found (empty = consistent).
    pub problems: Vec<String>,
}

impl CheckReport {
    /// True when no problems were found.
    pub fn is_clean(&self) -> bool {
        self.problems.is_empty()
    }
}

/// Runs a full consistency check against the mounted file system.
pub fn check(fs: &Wafl) -> Result<CheckReport, WaflError> {
    let mut report = CheckReport::default();
    // bno -> who references it (for duplicate diagnostics).
    let mut refs: BTreeMap<u64, String> = BTreeMap::new();
    let claim =
        |refs: &mut BTreeMap<u64, String>, report: &mut CheckReport, bno: u64, owner: String| {
            if bno == 0 {
                return;
            }
            if let Some(prev) = refs.insert(bno, owner.clone()) {
                report
                    .problems
                    .push(format!("block {bno} referenced by both {prev} and {owner}"));
            }
        };

    // Fixed locations (inserted directly: block 0 is a real home here,
    // whereas `claim` treats 0 as a null pointer).
    for &b in &FSINFO_BLOCKS {
        if let Some(prev) = refs.insert(b, "fsinfo".into()) {
            report
                .problems
                .push(format!("block {b} referenced by both {prev} and fsinfo"));
        }
    }

    // Every inode's data and indirect blocks.
    let mut expected_nlink: BTreeMap<Ino, u16> = BTreeMap::new();
    for ino in 0..fs.max_ino() {
        if !fs.inode_exists(ino) {
            continue;
        }
        let st = fs.stat(ino)?;
        if ino != INO_BLKMAP {
            for (fbn, bno) in fs.file_extents_any(ino)?.iter().enumerate() {
                claim(
                    &mut refs,
                    &mut report,
                    *bno as u64,
                    format!("inode {ino} fbn {fbn}"),
                );
            }
            for bno in fs.indirect_homes(ino)? {
                claim(
                    &mut refs,
                    &mut report,
                    bno as u64,
                    format!("inode {ino} indirect"),
                );
            }
        }
        // Directory entries must point at live inodes; accumulate link
        // expectations (dirs: 2 + child dirs; leaves: one per referencing
        // entry, which is how hard links are verified).
        if st.ftype == FileType::Dir {
            *expected_nlink.entry(ino).or_insert(2) += 0;
            for (name, child) in fs.readdir(ino)? {
                if !fs.inode_exists(child) {
                    report
                        .problems
                        .push(format!("dangling entry {name:?} -> {child} in dir {ino}"));
                    continue;
                }
                match fs.stat(child)?.ftype {
                    FileType::Dir => {
                        *expected_nlink.entry(ino).or_insert(2) += 1;
                        *expected_nlink.entry(child).or_insert(2) += 0;
                    }
                    FileType::File | FileType::Symlink => {
                        *expected_nlink.entry(child).or_insert(0) += 1;
                    }
                }
            }
        }
    }
    // Link counts.
    for (ino, want) in expected_nlink {
        let got = fs.stat(ino)?.nlink;
        if got != want {
            report
                .problems
                .push(format!("inode {ino}: nlink {got}, expected {want}"));
        }
    }

    // Metadata file homes: inode file and block map file + their indirects.
    for (label, (slots, meta)) in [
        ("inofile", fs.inofile_layout()),
        ("blkmap", fs.blkmap_layout()),
    ] {
        for bno in slots {
            claim(&mut refs, &mut report, bno as u64, format!("{label} block"));
        }
        for bno in meta {
            claim(
                &mut refs,
                &mut report,
                bno as u64,
                format!("{label} indirect"),
            );
        }
    }
    // Tables.
    claim(
        &mut refs,
        &mut report,
        fs.snaptable_bno() as u64,
        "snaptable".into(),
    );
    claim(
        &mut refs,
        &mut report,
        fs.qtree_table_bno() as u64,
        "qtree table".into(),
    );

    report.referenced = refs.len() as u64;

    // Cross-check against the active plane.
    for (&bno, owner) in &refs {
        if !fs.blkmap().is_active(bno) {
            report
                .problems
                .push(format!("block {bno} ({owner}) referenced but not active"));
        }
    }
    let active = fs.blkmap().count_plane(0);
    if active != refs.len() as u64 {
        // Identify leaked blocks (active but unreferenced).
        let mut leaked = 0;
        for bno in fs.blkmap().iter_plane(0) {
            if !refs.contains_key(&bno) {
                leaked += 1;
                if leaked <= 5 {
                    report
                        .problems
                        .push(format!("block {bno} active but unreferenced (leak)"));
                }
            }
        }
        if leaked > 5 {
            report
                .problems
                .push(format!("... and {} more leaked blocks", leaked - 5));
        }
    }

    // The root must exist and be a directory.
    match fs.stat(INO_ROOT) {
        Ok(st) if st.ftype == FileType::Dir => {}
        Ok(_) => report.problems.push("root inode is not a directory".into()),
        Err(e) => report.problems.push(format!("no root inode: {e}")),
    }

    check_snapshot_planes(fs, &mut report);

    Ok(report)
}

/// Snapshot bit-plane invariants (the paper's Table 1 arithmetic).
///
/// - A plane whose snapshot id is not registered in the snapshot table
///   must be empty; leftovers mean `snap_delete` leaked blocks that can
///   never be freed.
/// - A registered snapshot captured a consistent file system, so its
///   plane holds at least one block.
/// - Only planes 0..=[`MAX_SNAPSHOTS`] exist; higher bits in any
///   block-map word are corruption.
/// - For snapshot pairs (and each snapshot against the active plane),
///   the set-difference identity behind incremental dumps must hold:
///   `|B| = |A| + |B−A| − |A−B|`, with the `iter_diff` word arithmetic
///   agreeing with per-block [`Table1State`] classification.
fn check_snapshot_planes(fs: &Wafl, report: &mut CheckReport) {
    use crate::blkmap::Table1State;
    use crate::blkmap::ACTIVE_PLANE;
    use crate::types::MAX_SNAPSHOTS;

    let bm = fs.blkmap();
    let registered: Vec<_> = fs.snapshots().iter().map(|s| s.id).collect();

    for id in 1..=MAX_SNAPSHOTS {
        let n = bm.count_plane(id);
        if registered.contains(&id) {
            if n == 0 {
                report
                    .problems
                    .push(format!("snapshot plane {id} is registered but empty"));
            }
        } else if n != 0 {
            report.problems.push(format!(
                "snapshot plane {id} is not registered but holds {n} block(s) (snap_delete leak)"
            ));
        }
    }

    // In-memory mutations are plane-bounded, so undefined bits can only
    // enter through a corrupted on-disk image; mount records them.
    let bad = bm.undefined_bits();
    for &(bno, word) in bad.iter().take(5) {
        report.problems.push(format!(
            "block {bno}: block-map word {word:#010x} sets bits above plane {MAX_SNAPSHOTS}"
        ));
    }
    if bad.len() > 5 {
        report.problems.push(format!(
            "... and {} more blocks with undefined plane bits",
            bad.len() - 5
        ));
    }

    // Pairs: consecutive registered snapshots (the full/incremental pairs
    // a dump schedule would use) plus each snapshot against the active
    // plane.
    let mut pairs: Vec<(u8, u8)> = Vec::new();
    for w in registered.windows(2) {
        pairs.push((w[0], w[1]));
    }
    for &id in &registered {
        pairs.push((id, ACTIVE_PLANE));
    }
    for (a, b) in pairs {
        // Word-level Table 1 census: 64 blocks per op over the two plane
        // bitsets (B−A = newly written, A−B = deleted).
        let (mut newly, mut deleted) = (0u64, 0u64);
        for (&wa, &wb) in bm.plane_words(a).iter().zip(bm.plane_words(b)) {
            newly += (wb & !wa).count_ones() as u64;
            deleted += (wa & !wb).count_ones() as u64;
        }
        let b_minus_a = bm.count_diff(b, a);
        let a_minus_b = bm.count_diff(a, b);
        // Per-block classification cross-check, kept for test (debug)
        // builds where a word-level bug would otherwise self-agree.
        if cfg!(debug_assertions) {
            let in_plane = |bno: u64, p: u8| {
                if p == ACTIVE_PLANE {
                    bm.is_active(bno)
                } else {
                    bm.in_snapshot(bno, p)
                }
            };
            let (mut slow_newly, mut slow_deleted) = (0u64, 0u64);
            for bno in 0..bm.nblocks() {
                let state = match (in_plane(bno, a), in_plane(bno, b)) {
                    (false, false) => Table1State::NotInEither,
                    (false, true) => Table1State::NewlyWritten,
                    (true, false) => Table1State::Deleted,
                    (true, true) => Table1State::Unchanged,
                };
                debug_assert!(
                    a == ACTIVE_PLANE || b == ACTIVE_PLANE || state == bm.table1_state(bno, a, b)
                );
                match state {
                    Table1State::NewlyWritten => slow_newly += 1,
                    Table1State::Deleted => slow_deleted += 1,
                    Table1State::NotInEither | Table1State::Unchanged => {}
                }
            }
            if slow_newly != b_minus_a || slow_deleted != a_minus_b {
                report.problems.push(format!(
                    "planes ({a},{b}): iter_diff says B−A={b_minus_a}, A−B={a_minus_b} \
                     but Table 1 classification says {slow_newly}, {slow_deleted}"
                ));
            }
        }
        if newly != b_minus_a || deleted != a_minus_b {
            report.problems.push(format!(
                "planes ({a},{b}): count_diff says B−A={b_minus_a}, A−B={a_minus_b} \
                 but the word census says {newly}, {deleted}"
            ));
        }
        let na = bm.count_plane(a);
        let nb = bm.count_plane(b);
        if nb as i128 != na as i128 + b_minus_a as i128 - a_minus_b as i128 {
            report.problems.push(format!(
                "planes ({a},{b}): |B|={nb} but |A|+|B−A|−|A−B| = {na}+{b_minus_a}−{a_minus_b}"
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Attrs;
    use crate::types::WaflConfig;
    use blockdev::Block;
    use blockdev::DiskPerf;
    use raid::Volume;
    use raid::VolumeGeometry;

    fn fs() -> Wafl {
        let vol = Volume::new(VolumeGeometry::uniform(1, 4, 2048, DiskPerf::ideal()));
        Wafl::format(vol, WaflConfig::default()).unwrap()
    }

    #[test]
    fn fresh_fs_is_clean() {
        let mut fs = fs();
        fs.cp().unwrap();
        let report = check(&fs).unwrap();
        assert!(report.is_clean(), "problems: {:?}", report.problems);
        assert!(report.referenced > 0);
    }

    #[test]
    fn busy_fs_is_clean_after_cp() {
        let mut fs = fs();
        let d = fs
            .create(INO_ROOT, "d", FileType::Dir, Attrs::default())
            .unwrap();
        for i in 0..20u64 {
            let f = fs
                .create(d, &format!("f{i}"), FileType::File, Attrs::default())
                .unwrap();
            for b in 0..30 {
                fs.write_fbn(f, b, Block::Synthetic(i * 100 + b)).unwrap();
            }
        }
        // Deletes and truncations too.
        fs.remove(d, "f3").unwrap();
        let f5 = fs.namei("/d/f5").unwrap();
        fs.set_size(f5, 4096).unwrap();
        fs.snapshot_create("s").unwrap();
        fs.remove(d, "f7").unwrap();
        fs.cp().unwrap();
        let report = check(&fs).unwrap();
        assert!(report.is_clean(), "problems: {:?}", report.problems);
    }

    #[test]
    fn snapshot_planes_satisfy_table1_arithmetic() {
        let mut fs = fs();
        let f = fs
            .create(INO_ROOT, "f", FileType::File, Attrs::default())
            .unwrap();
        for b in 0..8 {
            fs.write_fbn(f, b, Block::Synthetic(b)).unwrap();
        }
        let a = fs.snapshot_create("a").unwrap();
        // Overwrite some blocks and delete others so A−B and B−A are both
        // non-empty, then snapshot again.
        for b in 0..4 {
            fs.write_fbn(f, b, Block::Synthetic(100 + b)).unwrap();
        }
        fs.set_size(f, 6 * 4096).unwrap();
        let b = fs.snapshot_create("b").unwrap();
        fs.write_fbn(f, 0, Block::Synthetic(200)).unwrap();
        fs.cp().unwrap();

        let report = check(&fs).unwrap();
        assert!(report.is_clean(), "problems: {:?}", report.problems);
        // The incremental (B−A) must be non-trivial for this to have
        // exercised anything.
        assert!(fs.blkmap().iter_diff(b, a).count() > 0);

        // Deleting a snapshot must leave its plane empty (checked by the
        // stale-plane invariant on the next run).
        fs.snapshot_delete(a).unwrap();
        fs.cp().unwrap();
        let report = check(&fs).unwrap();
        assert!(report.is_clean(), "problems: {:?}", report.problems);
    }

    #[test]
    fn leaked_snapshot_plane_is_reported() {
        let mut fs = fs();
        fs.snapshot_create("s").unwrap();
        fs.cp().unwrap();
        // Corrupt the snapshot table the way a buggy snap_delete would:
        // drop the registration but leave the bit plane populated.
        fs.snapshots.retain(|s| s.name != "s");
        let report = check(&fs).unwrap();
        assert!(
            report
                .problems
                .iter()
                .any(|p| p.contains("snap_delete leak")),
            "problems: {:?}",
            report.problems
        );
    }

    #[test]
    fn referenced_count_tracks_active_plane() {
        let mut fs = fs();
        let f = fs
            .create(INO_ROOT, "f", FileType::File, Attrs::default())
            .unwrap();
        for b in 0..10 {
            fs.write_fbn(f, b, Block::Synthetic(b)).unwrap();
        }
        fs.cp().unwrap();
        let report = check(&fs).unwrap();
        assert!(report.is_clean(), "problems: {:?}", report.problems);
        assert_eq!(report.referenced, fs.active_blocks());
    }
}
