#![warn(missing_docs)]

//! WAFL (Write Anywhere File Layout) — the file system under study.
//!
//! This is a faithful functional model of the paper's §2: 4 KB blocks,
//! inodes, metadata kept in files (the *inode file* and the *block map
//! file*), copy-on-write with no fixed block locations except the fsinfo
//! root, snapshots implemented as bit planes in a 32-bit-per-block block
//! map, consistency points, and an NVRAM operation log.
//!
//! Architecture: a mounted [`fs::Wafl`] keeps an in-memory object model
//! (inode table, directory contents, per-file block trees, the bit-plane
//! block map) that mirrors the *next* consistency point. All file data and,
//! at every consistency point, all metadata are serialized into real volume
//! blocks through the RAID layer — so the on-disk image alone is always a
//! complete, self-consistent file system: [`fs::Wafl::mount`] rebuilds
//! everything from block 0/1 (the redundant fsinfo copies), and a simulated
//! crash simply drops the object model and replays the NVRAM log, exactly
//! the paper's recovery story. Physical (image) backup copies those volume
//! blocks without interpretation and the result re-mounts with all
//! snapshots intact.
//!
//! Modules:
//!
//! - [`types`] — inode numbers, attributes (including the multiprotocol
//!   DOS/NT extras the paper's dump format carries), configuration.
//! - [`ondisk`] — byte-level serialization of every on-disk structure.
//! - [`blkmap`] — the 32-bit-per-block allocation map and its plane algebra
//!   (the heart of incremental image dump, Table 1).
//! - [`fs`] — format, mount, consistency points, crash/replay.
//! - [`ops`] — file operations (create/write/read/unlink/rename/...).
//! - [`snapshot`] — snapshot create/delete and bookkeeping.
//! - [`snapview`] — read-only, disk-parsing views of a snapshot (what
//!   logical dump reads from).
//! - [`check`] — a consistency checker proving the "no fsck needed"
//!   claim after every simulated crash.
//! - [`cost`] — modelled CPU costs charged to the shared meter.

pub mod blkmap;
pub mod check;
pub mod cost;
pub mod error;
pub mod fs;
pub mod ondisk;
pub mod ops;
pub mod schedule;
pub mod snapshot;
pub mod snapview;
pub mod types;

pub use blkmap::BlkMap;
pub use error::WaflError;
pub use fs::Wafl;
pub use snapview::SnapView;
pub use types::Attrs;
pub use types::FileType;
pub use types::Ino;
pub use types::SnapId;
pub use types::WaflConfig;
