//! Scheduled snapshots — the paper's §2.1 operating practice.
//!
//! "Snapshots can be taken manually, and are also taken on a schedule
//! selected by the file system administrator; a common schedule is hourly
//! snapshots taken every 4 hours throughout the day and kept for 24 hours
//! plus daily snapshots taken every night at midnight and kept for 2
//! days." This module implements exactly that rotation: `hourly.0` is the
//! newest hourly (older ones shift to `hourly.1`, `hourly.2`, ...), and
//! likewise for `daily.N`, with retention counts that drop the oldest.

use crate::error::WaflError;
use crate::fs::Wafl;

/// A rotating snapshot schedule.
#[derive(Debug, Clone)]
pub struct SnapshotSchedule {
    /// Hourly snapshots kept (the paper's 24 h at one per 4 h = 6).
    pub keep_hourly: usize,
    /// Daily snapshots kept (the paper's 2).
    pub keep_daily: usize,
}

impl Default for SnapshotSchedule {
    fn default() -> Self {
        // The paper's "common schedule".
        SnapshotSchedule {
            keep_hourly: 6,
            keep_daily: 2,
        }
    }
}

impl SnapshotSchedule {
    /// Takes the next snapshot of `class` ("hourly" or "daily"), rotating
    /// names and enforcing retention. Returns the names deleted.
    pub fn take(&self, fs: &mut Wafl, class: &str) -> Result<Vec<String>, WaflError> {
        let keep = match class {
            "hourly" => self.keep_hourly,
            "daily" => self.keep_daily,
            other => {
                return Err(WaflError::Invalid {
                    reason: format!("unknown snapshot class {other:?}"),
                })
            }
        };
        if keep == 0 {
            return Err(WaflError::Invalid {
                reason: "retention of zero".into(),
            });
        }

        // Existing generations of this class, oldest last.
        let mut gens: Vec<(usize, String)> = fs
            .snapshots()
            .iter()
            .filter_map(|s| {
                s.name
                    .strip_prefix(&format!("{class}."))
                    .and_then(|n| n.parse::<usize>().ok())
                    .map(|g| (g, s.name.clone()))
            })
            .collect();
        gens.sort_unstable();

        // Drop generations that rotation would push past retention.
        let mut deleted = Vec::new();
        for (gen, name) in gens.iter().rev() {
            if gen + 1 >= keep {
                let id = fs
                    .snapshot_by_name(name)
                    .ok_or_else(|| WaflError::NotFound {
                        what: format!("snapshot {name:?}"),
                    })?
                    .id;
                fs.snapshot_delete(id)?;
                deleted.push(name.clone());
            }
        }

        // Shift survivors up by one (oldest first would collide; go from
        // the highest surviving generation down).
        let survivors: Vec<(usize, String)> = gens
            .into_iter()
            .filter(|(_, name)| !deleted.contains(name))
            .collect();
        for (gen, name) in survivors.into_iter().rev() {
            let id = fs
                .snapshot_by_name(&name)
                .ok_or_else(|| WaflError::NotFound {
                    what: format!("snapshot {name:?}"),
                })?
                .id;
            fs.snapshot_rename(id, &format!("{class}.{}", gen + 1))?;
        }

        // The fresh snapshot becomes generation 0.
        fs.snapshot_create(&format!("{class}.0"))?;
        Ok(deleted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Attrs;
    use crate::types::FileType;
    use crate::types::WaflConfig;
    use crate::types::INO_ROOT;
    use blockdev::Block;
    use blockdev::DiskPerf;
    use raid::Volume;
    use raid::VolumeGeometry;

    fn fs() -> Wafl {
        let vol = Volume::new(VolumeGeometry::uniform(1, 4, 2048, DiskPerf::ideal()));
        Wafl::format(vol, WaflConfig::default()).unwrap()
    }

    fn names(fs: &Wafl) -> Vec<String> {
        let mut v: Vec<String> = fs.snapshots().iter().map(|s| s.name.clone()).collect();
        v.sort();
        v
    }

    #[test]
    fn rotation_shifts_generations() {
        let mut fs = fs();
        let sched = SnapshotSchedule::default();
        sched.take(&mut fs, "hourly").unwrap();
        sched.take(&mut fs, "hourly").unwrap();
        sched.take(&mut fs, "hourly").unwrap();
        assert_eq!(names(&fs), vec!["hourly.0", "hourly.1", "hourly.2"]);
    }

    #[test]
    fn retention_drops_the_oldest() {
        let mut fs = fs();
        let sched = SnapshotSchedule {
            keep_hourly: 3,
            keep_daily: 2,
        };
        for _ in 0..5 {
            sched.take(&mut fs, "hourly").unwrap();
        }
        assert_eq!(names(&fs), vec!["hourly.0", "hourly.1", "hourly.2"]);
        // Classes rotate independently.
        sched.take(&mut fs, "daily").unwrap();
        sched.take(&mut fs, "daily").unwrap();
        let deleted = sched.take(&mut fs, "daily").unwrap();
        assert_eq!(deleted, vec!["daily.1".to_string()]);
        assert_eq!(
            names(&fs),
            vec!["daily.0", "daily.1", "hourly.0", "hourly.1", "hourly.2"]
        );
    }

    #[test]
    fn generations_capture_history() {
        let mut fs = fs();
        let sched = SnapshotSchedule::default();
        let f = fs
            .create(INO_ROOT, "f", FileType::File, Attrs::default())
            .unwrap();
        for v in 0..3u64 {
            fs.write_fbn(f, 0, Block::Synthetic(v)).unwrap();
            sched.take(&mut fs, "hourly").unwrap();
        }
        // hourly.0 holds v=2, hourly.1 v=1, hourly.2 v=0 — the user can
        // reach back in time.
        for (gen, want) in [(0u32, 2u64), (1, 1), (2, 0)] {
            let id = fs.snapshot_by_name(&format!("hourly.{gen}")).unwrap().id;
            let mut view = fs.snap_view(id).unwrap();
            let ino = view.namei("/f").unwrap();
            let di = view.read_inode(ino).unwrap().unwrap();
            let slots = view.file_slots(&di).unwrap();
            assert!(
                view.read_file_block(&slots, 0)
                    .unwrap()
                    .same_content(&Block::Synthetic(want)),
                "hourly.{gen} should hold version {want}"
            );
        }
    }

    #[test]
    fn unknown_class_is_rejected() {
        let mut fs = fs();
        let sched = SnapshotSchedule::default();
        assert!(sched.take(&mut fs, "weekly").is_err());
    }
}
