//! Read-only views of a snapshot (or of the last consistency point).
//!
//! A [`SnapView`] reads everything from *disk blocks* — the inode file, the
//! indirect blocks, directories, file data — rather than from the mounted
//! object model. That is deliberate: this is the path logical dump uses, so
//! its disk traffic (and its randomness on a fragmented volume) is real and
//! lands in the device counters the benchmark harness reads.

use blockdev::Block;

use crate::error::WaflError;
use crate::fs::blocks_of;
use crate::fs::read_tree;
use crate::fs::Wafl;
use crate::ondisk;
use crate::ondisk::DiskInode;
use crate::ondisk::TreeRoot;
use crate::ondisk::BLOCK_SIZE;
use crate::types::FileType;
use crate::types::Ino;
use crate::types::SnapId;
use crate::types::INODES_PER_BLOCK;
use crate::types::INODE_SIZE;

/// A read-only, disk-parsing view of one file system image.
pub struct SnapView<'a> {
    fs: &'a mut Wafl,
    /// Inode-file block index → volume block (parsed once).
    inofile_slots: Vec<u32>,
    /// Number of inode slots in the image.
    max_ino: Ino,
    /// Cache of the most recently read inode-file block (dump reads inodes
    /// in ascending order, so this captures almost all re-reads).
    cached_ino_block: Option<(u64, Box<[u8; BLOCK_SIZE]>)>,
}

impl Wafl {
    /// Opens a view of snapshot `id`.
    pub fn snap_view(&mut self, id: SnapId) -> Result<SnapView<'_>, WaflError> {
        let root = self
            .snapshot_by_id(id)
            .ok_or(WaflError::NoSuchSnapshot { id })?
            .inofile
            .clone();
        SnapView::open(self, &root)
    }

    /// Opens a view of the most recent consistency point (takes one first
    /// so the view matches the live state).
    pub fn active_view(&mut self) -> Result<SnapView<'_>, WaflError> {
        self.cp()?;
        let root = self.last_inofile_root.clone();
        SnapView::open(self, &root)
    }
}

impl<'a> SnapView<'a> {
    fn open(fs: &'a mut Wafl, root: &TreeRoot) -> Result<SnapView<'a>, WaflError> {
        let (tree, _meta) = read_tree(&mut fs.vol, root)?;
        let max_ino = (root.size / INODE_SIZE as u64) as Ino;
        Ok(SnapView {
            fs,
            inofile_slots: tree.slots,
            max_ino,
            cached_ino_block: None,
        })
    }

    /// One past the largest inode number in the image.
    pub fn max_ino(&self) -> Ino {
        self.max_ino
    }

    fn read_raw(&mut self, bno: u32) -> Result<Block, WaflError> {
        self.fs.meter.charge_cpu(self.fs.costs.fs_read_block);
        Ok(self.fs.vol.read_block(bno as u64)?)
    }

    /// Reads inode `ino` from the image; `Ok(None)` for a free slot.
    pub fn read_inode(&mut self, ino: Ino) -> Result<Option<DiskInode>, WaflError> {
        if ino >= self.max_ino {
            return Ok(None);
        }
        let blk_idx = ino as u64 / INODES_PER_BLOCK;
        let need_read = match &self.cached_ino_block {
            Some((cached, _)) => *cached != blk_idx,
            None => true,
        };
        if need_read {
            let bno = self
                .inofile_slots
                .get(blk_idx as usize)
                .copied()
                .unwrap_or(0);
            if bno == 0 {
                return Ok(None);
            }
            let block = self.read_raw(bno)?;
            self.cached_ino_block = Some((blk_idx, block.materialize()));
        }
        let (_, bytes) = self.cached_ino_block.as_ref().ok_or(WaflError::Invalid {
            reason: "inode block cache empty after fill".into(),
        })?;
        let off = (ino as u64 % INODES_PER_BLOCK) as usize * INODE_SIZE;
        let di = DiskInode::read_from(&bytes[off..off + INODE_SIZE]);
        Ok(di.ftype.map(|_| di))
    }

    /// Parses a file's full block mapping (fbn → volume block, 0 = hole),
    /// reading its indirect blocks.
    pub fn file_slots(&mut self, di: &DiskInode) -> Result<Vec<u32>, WaflError> {
        let (tree, _meta) = read_tree(&mut self.fs.vol, &di.root)?;
        Ok(tree.slots)
    }

    /// Reads one file block given a previously parsed slot table.
    pub fn read_file_block(&mut self, slots: &[u32], fbn: u64) -> Result<Block, WaflError> {
        match slots.get(fbn as usize).copied().unwrap_or(0) {
            0 => Ok(Block::Zero),
            bno => self.read_raw(bno),
        }
    }

    /// Reads a directory's entries from its blocks.
    pub fn read_dir(&mut self, di: &DiskInode) -> Result<Vec<(String, Ino)>, WaflError> {
        if di.ftype != Some(FileType::Dir) {
            return Err(WaflError::Invalid {
                reason: "not a directory".into(),
            });
        }
        let slots = self.file_slots(di)?;
        let mut entries = Vec::new();
        for fbn in 0..blocks_of(di.root.size) {
            let bno = slots.get(fbn as usize).copied().unwrap_or(0);
            if bno == 0 {
                continue;
            }
            let block = self.read_raw(bno)?;
            entries.extend(ondisk::dir_from_block(&block));
        }
        Ok(entries)
    }

    /// Resolves a path within the image.
    pub fn namei(&mut self, path: &str) -> Result<Ino, WaflError> {
        let mut ino = crate::types::INO_ROOT;
        for comp in path.split('/').filter(|c| !c.is_empty()) {
            let di = self.read_inode(ino)?.ok_or_else(|| WaflError::NotFound {
                what: format!("inode {ino}"),
            })?;
            let entries = self.read_dir(&di)?;
            ino = entries
                .iter()
                .find(|(n, _)| n == comp)
                .map(|(_, i)| *i)
                .ok_or_else(|| WaflError::NotFound {
                    what: format!("{comp:?} in {path:?}"),
                })?;
        }
        Ok(ino)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Attrs;
    use crate::types::WaflConfig;
    use crate::types::INO_ROOT;
    use blockdev::DiskPerf;
    use raid::Volume;
    use raid::VolumeGeometry;

    fn fs() -> Wafl {
        let vol = Volume::new(VolumeGeometry::uniform(1, 4, 2048, DiskPerf::ideal()));
        Wafl::format(vol, WaflConfig::default()).unwrap()
    }

    #[test]
    fn active_view_reads_files_from_disk() {
        let mut fs = fs();
        let f = fs
            .create(INO_ROOT, "data", FileType::File, Attrs::default())
            .unwrap();
        for i in 0..30 {
            fs.write_fbn(f, i, Block::Synthetic(100 + i)).unwrap();
        }
        let mut view = fs.active_view().unwrap();
        let di = view.read_inode(f).unwrap().expect("file exists");
        assert_eq!(di.root.size, 30 * 4096);
        let slots = view.file_slots(&di).unwrap();
        for i in 0..30 {
            let got = view.read_file_block(&slots, i).unwrap();
            assert!(got.same_content(&Block::Synthetic(100 + i)), "fbn {i}");
        }
        // Past-EOF reads as a hole.
        assert!(view
            .read_file_block(&slots, 99)
            .unwrap()
            .same_content(&Block::Zero));
    }

    #[test]
    fn snapshot_view_sees_the_past() {
        let mut fs = fs();
        let f = fs
            .create(INO_ROOT, "versioned", FileType::File, Attrs::default())
            .unwrap();
        fs.write_fbn(f, 0, Block::Synthetic(1)).unwrap();
        let id = fs.snapshot_create("before").unwrap();
        fs.write_fbn(f, 0, Block::Synthetic(2)).unwrap();
        fs.create(INO_ROOT, "newer", FileType::File, Attrs::default())
            .unwrap();
        fs.cp().unwrap();

        // The snapshot still shows the old content and no "newer" file.
        let mut snap = fs.snap_view(id).unwrap();
        let di = snap.read_inode(f).unwrap().expect("in snapshot");
        let slots = snap.file_slots(&di).unwrap();
        assert!(snap
            .read_file_block(&slots, 0)
            .unwrap()
            .same_content(&Block::Synthetic(1)));
        assert!(snap.namei("/newer").is_err());
        assert_eq!(snap.namei("/versioned").unwrap(), f);

        // The active view shows the new world.
        let mut live = fs.active_view().unwrap();
        let di = live.read_inode(f).unwrap().expect("live");
        let slots = live.file_slots(&di).unwrap();
        assert!(live
            .read_file_block(&slots, 0)
            .unwrap()
            .same_content(&Block::Synthetic(2)));
        assert!(live.namei("/newer").is_ok());
    }

    #[test]
    fn deleted_files_survive_in_snapshots() {
        let mut fs = fs();
        let f = fs
            .create(INO_ROOT, "doomed", FileType::File, Attrs::default())
            .unwrap();
        fs.write_fbn(f, 0, Block::Synthetic(77)).unwrap();
        let id = fs.snapshot_create("keep").unwrap();
        fs.remove(INO_ROOT, "doomed").unwrap();
        fs.cp().unwrap();
        assert!(fs.namei("/doomed").is_err());

        // "Snapshots can be used as an on-line backup capability allowing
        // users to recover their own files."
        let mut snap = fs.snap_view(id).unwrap();
        let ino = snap.namei("/doomed").unwrap();
        let di = snap.read_inode(ino).unwrap().expect("in snapshot");
        let slots = snap.file_slots(&di).unwrap();
        assert!(snap
            .read_file_block(&slots, 0)
            .unwrap()
            .same_content(&Block::Synthetic(77)));
    }

    #[test]
    fn dir_listing_matches_live_fs() {
        let mut fs = fs();
        for name in ["a", "b", "c"] {
            fs.create(INO_ROOT, name, FileType::File, Attrs::default())
                .unwrap();
        }
        let mut view = fs.active_view().unwrap();
        let root = view.read_inode(INO_ROOT).unwrap().expect("root");
        let entries = view.read_dir(&root).unwrap();
        let names: Vec<&str> = entries.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn free_inode_slots_read_as_none() {
        let mut fs = fs();
        let f = fs
            .create(INO_ROOT, "gone", FileType::File, Attrs::default())
            .unwrap();
        fs.remove(INO_ROOT, "gone").unwrap();
        let mut view = fs.active_view().unwrap();
        assert!(view.read_inode(f).unwrap().is_none());
        assert!(view.read_inode(9999).unwrap().is_none());
    }
}
