//! Snapshot creation and deletion.
//!
//! Creating a snapshot is the paper's §2.1 procedure: take a consistency
//! point so disk is current, duplicate the root data structure (our
//! [`crate::ondisk::SnapEntry`] holds the inode-file root), and copy the
//! active bit plane of the block map into the snapshot's plane. Blocks stay
//! unavailable for reuse until every plane referencing them is clear.

use crate::error::WaflError;
use crate::fs::Wafl;
use crate::ondisk::SnapEntry;
use crate::ondisk::MAX_SNAP_NAME;
use crate::types::SnapId;
use crate::types::MAX_SNAPSHOTS;

impl Wafl {
    /// Creates a read-only snapshot of the entire file system.
    ///
    /// Returns the snapshot id (the bit plane it occupies).
    pub fn snapshot_create(&mut self, name: &str) -> Result<SnapId, WaflError> {
        if name.is_empty() || name.len() > MAX_SNAP_NAME {
            return Err(WaflError::Invalid {
                reason: "bad snapshot name".into(),
            });
        }
        if self.snapshots.iter().any(|s| s.name == name) {
            return Err(WaflError::Exists { name: name.into() });
        }
        if self.snapshots.len() >= MAX_SNAPSHOTS as usize {
            return Err(WaflError::TooManySnapshots);
        }
        let id = (1..=MAX_SNAPSHOTS)
            .find(|id| !self.snapshots.iter().any(|s| s.id == *id))
            .ok_or(WaflError::TooManySnapshots)?;

        // Make the on-disk image current, then capture it.
        self.cp()?;
        obs::counter("wafl.snapshot.creates").inc();
        if obs::trace_enabled() {
            obs::event::emit_labeled(obs::event::EventKind::SnapshotCreate, name, 0, 0.0);
        }
        let nwords = self.blkmap.nblocks();
        self.blkmap.snap_create(id);
        self.meter
            .charge_cpu(self.costs.snap_per_word * nwords as f64);
        let entry = SnapEntry {
            id,
            name: name.into(),
            cp_count: self.cp_count,
            created: self.now(),
            inofile: self.last_inofile_root.clone(),
        };
        self.snapshots.push(entry);
        // Persist the plane copy and the table.
        self.cp()?;
        Ok(id)
    }

    /// Deletes a snapshot; blocks held only by it become free (after the
    /// commit).
    pub fn snapshot_delete(&mut self, id: SnapId) -> Result<(), WaflError> {
        let idx = self
            .snapshots
            .iter()
            .position(|s| s.id == id)
            .ok_or(WaflError::NoSuchSnapshot { id })?;
        // Blocks whose only reference is this snapshot become free, but —
        // as with any free — they must not be reused until the CP commits,
        // because the on-disk snapshot table still references them.
        let newly_free: Vec<u64> = self.blkmap.iter_exclusive(id).collect();
        obs::counter("wafl.snapshot.deletes").inc();
        if obs::trace_enabled() {
            let name = self.snapshots[idx].name.clone();
            obs::event::emit_labeled(obs::event::EventKind::SnapshotDelete, &name, 0, 0.0);
        }
        let nwords = self.blkmap.nblocks();
        self.blkmap.snap_delete(id);
        self.meter
            .charge_cpu(self.costs.snap_per_word * nwords as f64);
        self.frozen.extend(newly_free);
        self.snapshots.remove(idx);
        self.cp()?;
        Ok(())
    }

    /// Renames a snapshot (used by the rotation schedule).
    pub fn snapshot_rename(&mut self, id: SnapId, new_name: &str) -> Result<(), WaflError> {
        if new_name.is_empty() || new_name.len() > MAX_SNAP_NAME {
            return Err(WaflError::Invalid {
                reason: "bad snapshot name".into(),
            });
        }
        if self
            .snapshots
            .iter()
            .any(|s| s.name == new_name && s.id != id)
        {
            return Err(WaflError::Exists {
                name: new_name.into(),
            });
        }
        let entry = self
            .snapshots
            .iter_mut()
            .find(|s| s.id == id)
            .ok_or(WaflError::NoSuchSnapshot { id })?;
        entry.name = new_name.into();
        self.cp()?;
        Ok(())
    }

    /// The snapshot table.
    pub fn snapshots(&self) -> &[SnapEntry] {
        &self.snapshots
    }

    /// Finds a snapshot by name.
    pub fn snapshot_by_name(&self, name: &str) -> Option<&SnapEntry> {
        self.snapshots.iter().find(|s| s.name == name)
    }

    /// Finds a snapshot by id.
    pub fn snapshot_by_id(&self, id: SnapId) -> Option<&SnapEntry> {
        self.snapshots.iter().find(|s| s.id == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Attrs;
    use crate::types::FileType;
    use crate::types::WaflConfig;
    use crate::types::INO_ROOT;
    use blockdev::Block;
    use blockdev::DiskPerf;
    use raid::Volume;
    use raid::VolumeGeometry;

    fn fs() -> Wafl {
        let vol = Volume::new(VolumeGeometry::uniform(1, 4, 2048, DiskPerf::ideal()));
        Wafl::format(vol, WaflConfig::default()).unwrap()
    }

    #[test]
    fn snapshot_ids_allocate_lowest_free() {
        let mut fs = fs();
        assert_eq!(fs.snapshot_create("a").unwrap(), 1);
        assert_eq!(fs.snapshot_create("b").unwrap(), 2);
        fs.snapshot_delete(1).unwrap();
        assert_eq!(fs.snapshot_create("c").unwrap(), 1);
        assert_eq!(fs.snapshots().len(), 2);
    }

    #[test]
    fn snapshot_limit_is_twenty() {
        let mut fs = fs();
        for i in 0..20 {
            fs.snapshot_create(&format!("s{i}")).unwrap();
        }
        assert!(matches!(
            fs.snapshot_create("overflow"),
            Err(WaflError::TooManySnapshots)
        ));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut fs = fs();
        fs.snapshot_create("nightly").unwrap();
        assert!(matches!(
            fs.snapshot_create("nightly"),
            Err(WaflError::Exists { .. })
        ));
        assert!(fs.snapshot_by_name("nightly").is_some());
        assert!(fs.snapshot_by_name("missing").is_none());
    }

    #[test]
    fn deleting_missing_snapshot_errors() {
        let mut fs = fs();
        assert!(matches!(
            fs.snapshot_delete(5),
            Err(WaflError::NoSuchSnapshot { id: 5 })
        ));
    }

    #[test]
    fn snapshot_pins_blocks_until_deleted() {
        let mut fs = fs();
        let f = fs
            .create(INO_ROOT, "f", FileType::File, Attrs::default())
            .unwrap();
        for i in 0..50 {
            fs.write_fbn(f, i, Block::Synthetic(i)).unwrap();
        }
        fs.cp().unwrap();
        let free_before_snap = fs.free_blocks();
        fs.snapshot_create("hold").unwrap();
        fs.remove(INO_ROOT, "f").unwrap();
        fs.cp().unwrap();
        // Deleting the file frees (almost) nothing: the snapshot holds it.
        let free_while_held = fs.free_blocks();
        assert!(
            free_while_held < free_before_snap + 10,
            "snapshot failed to pin blocks: {free_while_held} vs {free_before_snap}"
        );
        fs.snapshot_delete(fs.snapshot_by_name("hold").unwrap().id)
            .unwrap();
        let free_after = fs.free_blocks();
        assert!(
            free_after > free_while_held + 40,
            "deleting the snapshot should release the file's blocks"
        );
    }

    #[test]
    fn snapshot_uses_no_space_until_change() {
        // Paper: "The copy uses no additional disk space until files are
        // changed or deleted due to the use of copy-on-write."
        let mut fs = fs();
        let f = fs
            .create(INO_ROOT, "f", FileType::File, Attrs::default())
            .unwrap();
        for i in 0..100 {
            fs.write_fbn(f, i, Block::Synthetic(i)).unwrap();
        }
        fs.cp().unwrap();
        let before = fs.free_blocks();
        fs.snapshot_create("s").unwrap();
        let after = fs.free_blocks();
        // Only metadata blocks (block map homes, tables, fsinfo path) move;
        // no data is duplicated.
        assert!(
            before - after < 20,
            "snapshot cost {} blocks",
            before - after
        );
    }

    #[test]
    fn overwrites_after_snapshot_consume_space() {
        let mut fs = fs();
        let f = fs
            .create(INO_ROOT, "f", FileType::File, Attrs::default())
            .unwrap();
        for i in 0..100 {
            fs.write_fbn(f, i, Block::Synthetic(i)).unwrap();
        }
        fs.cp().unwrap();
        fs.snapshot_create("s").unwrap();
        let before = fs.free_blocks();
        for i in 0..100 {
            fs.write_fbn(f, i, Block::Synthetic(1000 + i)).unwrap();
        }
        fs.cp().unwrap();
        let after = fs.free_blocks();
        // COW: the old blocks stay pinned, so ~100 new blocks are consumed.
        assert!(before - after >= 95, "only consumed {}", before - after);
    }
}
