//! Byte-level serialization of every on-disk structure.
//!
//! The on-disk image is the contract between the live file system, crash
//! recovery, and *physical* backup: image dump copies these blocks without
//! interpretation, and the restored volume must re-mount purely from them.
//! All integers are little-endian.

use blockdev::block::fnv1a;
use blockdev::Block;

pub use blockdev::BLOCK_SIZE;

use crate::error::WaflError;
use crate::types::Attrs;
use crate::types::FileType;
use crate::types::Ino;
use crate::types::SnapId;
use crate::types::INODE_SIZE;
use crate::types::MAX_ACL;
use crate::types::MAX_DOS_NAME;
use crate::types::MAX_NAME;
use crate::types::NDIRECT;

/// Magic number in the fsinfo block ("WAFLSIM1").
pub const FSINFO_MAGIC: u64 = 0x5741_464c_5349_4d31;

/// The two fixed fsinfo locations — the *only* blocks ever overwritten in
/// place (paper §2: the root inode "must be written in a fixed location
/// ... written redundantly").
pub const FSINFO_BLOCKS: [u64; 2] = [0, 1];

fn put_u16(buf: &mut [u8], off: usize, v: u16) {
    buf[off..off + 2].copy_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut [u8], off: usize, v: u32) {
    buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut [u8], off: usize, v: u64) {
    buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

fn get_u16(buf: &[u8], off: usize) -> u16 {
    let mut b = [0u8; 2];
    b.copy_from_slice(&buf[off..off + 2]);
    u16::from_le_bytes(b)
}

fn get_u32(buf: &[u8], off: usize) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&buf[off..off + 4]);
    u32::from_le_bytes(b)
}

fn get_u64(buf: &[u8], off: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[off..off + 8]);
    u64::from_le_bytes(b)
}

/// Root of a file's block tree: size plus the pointer set. Used for the
/// inode file root in the fsinfo block and for snapshot roots.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TreeRoot {
    /// File size in bytes.
    pub size: u64,
    /// Direct block pointers (0 = hole).
    pub direct: [u32; NDIRECT],
    /// Single-indirect block pointer.
    pub indirect: u32,
    /// Double-indirect block pointer.
    pub dindirect: u32,
}

/// Serialized size of a [`TreeRoot`].
pub const TREE_ROOT_SIZE: usize = 8 + 4 * NDIRECT + 4 + 4;

impl TreeRoot {
    /// Writes the root at `off` in `buf`.
    pub fn write_to(&self, buf: &mut [u8], off: usize) {
        put_u64(buf, off, self.size);
        for (i, &p) in self.direct.iter().enumerate() {
            put_u32(buf, off + 8 + 4 * i, p);
        }
        put_u32(buf, off + 8 + 4 * NDIRECT, self.indirect);
        put_u32(buf, off + 12 + 4 * NDIRECT, self.dindirect);
    }

    /// Reads a root from `off` in `buf`.
    pub fn read_from(buf: &[u8], off: usize) -> TreeRoot {
        let mut direct = [0u32; NDIRECT];
        for (i, d) in direct.iter_mut().enumerate() {
            *d = get_u32(buf, off + 8 + 4 * i);
        }
        TreeRoot {
            size: get_u64(buf, off),
            direct,
            indirect: get_u32(buf, off + 8 + 4 * NDIRECT),
            dindirect: get_u32(buf, off + 12 + 4 * NDIRECT),
        }
    }
}

/// The on-disk inode (256 bytes; 16 per block).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiskInode {
    /// File kind, or `None` for a free inode slot.
    pub ftype: Option<FileType>,
    /// Attributes including multiprotocol extras.
    pub attrs: Attrs,
    /// Link count.
    pub nlink: u16,
    /// Owning qtree (0 = none).
    pub qtree: u16,
    /// Generation number for handle validation.
    pub gen: u32,
    /// Size and block pointers.
    pub root: TreeRoot,
}

impl DiskInode {
    /// A free inode slot.
    pub fn free() -> DiskInode {
        DiskInode {
            ftype: None,
            attrs: Attrs::default(),
            nlink: 0,
            qtree: 0,
            gen: 0,
            root: TreeRoot::default(),
        }
    }

    /// Serializes into a 256-byte slot.
    ///
    /// # Panics
    ///
    /// Panics if the DOS name or ACL exceed the format limits (the op layer
    /// validates before storing).
    pub fn write_to(&self, slot: &mut [u8]) {
        assert_eq!(slot.len(), INODE_SIZE);
        slot.fill(0);
        slot[0] = self.ftype.map(FileType::to_tag).unwrap_or(0);
        slot[1] = self.attrs.dos_attrs;
        put_u16(slot, 2, self.attrs.perm);
        put_u32(slot, 4, self.attrs.uid);
        put_u32(slot, 8, self.attrs.gid);
        put_u16(slot, 12, self.qtree);
        put_u16(slot, 14, self.nlink);
        put_u64(slot, 16, self.attrs.mtime);
        put_u64(slot, 24, self.attrs.ctime);
        put_u64(slot, 32, self.attrs.atime);
        put_u64(slot, 40, self.attrs.dos_time);
        put_u32(slot, 48, self.gen);
        self.root.write_to(slot, 56);
        // 56 + 80 = 136.
        let dos = self.attrs.dos_name.as_deref().unwrap_or("");
        assert!(dos.len() <= MAX_DOS_NAME, "dos name too long");
        slot[136] = dos.len() as u8;
        slot[137..137 + dos.len()].copy_from_slice(dos.as_bytes());
        let acl = self.attrs.nt_acl.as_deref().unwrap_or(&[]);
        assert!(acl.len() <= MAX_ACL, "acl too long");
        slot[160] = acl.len() as u8;
        slot[161..161 + acl.len()].copy_from_slice(acl);
    }

    /// Parses a 256-byte slot.
    pub fn read_from(slot: &[u8]) -> DiskInode {
        assert_eq!(slot.len(), INODE_SIZE);
        let dos_len = slot[136] as usize;
        let dos_name = if dos_len == 0 {
            None
        } else {
            Some(String::from_utf8_lossy(&slot[137..137 + dos_len.min(MAX_DOS_NAME)]).into_owned())
        };
        let acl_len = slot[160] as usize;
        let nt_acl = if acl_len == 0 {
            None
        } else {
            Some(slot[161..161 + acl_len.min(MAX_ACL)].to_vec())
        };
        DiskInode {
            ftype: FileType::from_tag(slot[0]),
            attrs: Attrs {
                dos_attrs: slot[1],
                perm: get_u16(slot, 2),
                uid: get_u32(slot, 4),
                gid: get_u32(slot, 8),
                mtime: get_u64(slot, 16),
                ctime: get_u64(slot, 24),
                atime: get_u64(slot, 32),
                dos_time: get_u64(slot, 40),
                dos_name,
                nt_acl,
            },
            qtree: get_u16(slot, 12),
            nlink: get_u16(slot, 14),
            gen: get_u32(slot, 48),
            root: TreeRoot::read_from(slot, 56),
        }
    }
}

/// The fsinfo root structure, written redundantly at blocks 0 and 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsInfo {
    /// Consistency-point counter (monotonic; higher wins at mount).
    pub cp_count: u64,
    /// Volume capacity in blocks.
    pub nblocks: u64,
    /// Next inode number to hand out.
    pub next_ino: Ino,
    /// Block holding the serialized snapshot table (0 = none yet).
    pub snaptable_bno: u32,
    /// Block holding the serialized qtree table (0 = none yet).
    pub qtree_bno: u32,
    /// Logical clock at the consistency point.
    pub tick: u64,
    /// Root of the inode file.
    pub inofile: TreeRoot,
    /// Root of the block-map file.
    ///
    /// Real WAFL reaches the block map through its inode in the inode file;
    /// keeping both metadata roots in fsinfo instead breaks the
    /// "allocating a block-map block dirties the inode file which dirties
    /// the block map" recursion at consistency points without changing any
    /// observable behaviour (inode 1 still exists and reports the file's
    /// size).
    pub blkmapfile: TreeRoot,
}

impl FsInfo {
    /// Serializes into a block.
    pub fn to_block(&self) -> Block {
        let mut buf = vec![0u8; BLOCK_SIZE];
        put_u64(&mut buf, 0, FSINFO_MAGIC);
        put_u64(&mut buf, 8, self.cp_count);
        put_u64(&mut buf, 16, self.nblocks);
        put_u32(&mut buf, 24, self.next_ino);
        put_u32(&mut buf, 28, self.snaptable_bno);
        put_u32(&mut buf, 32, self.qtree_bno);
        put_u64(&mut buf, 40, self.tick);
        self.inofile.write_to(&mut buf, 64);
        self.blkmapfile.write_to(&mut buf, 64 + TREE_ROOT_SIZE);
        // Checksum over the block with the checksum field zeroed.
        let sum = fnv1a(&buf);
        put_u64(&mut buf, 48, sum);
        Block::from_bytes(&buf)
    }

    /// Parses and validates an fsinfo block.
    pub fn from_block(block: &Block) -> Result<FsInfo, WaflError> {
        let buf = block.materialize();
        if get_u64(&buf[..], 0) != FSINFO_MAGIC {
            return Err(WaflError::BadImage {
                reason: "bad fsinfo magic".into(),
            });
        }
        let stored = get_u64(&buf[..], 48);
        let mut copy = buf.to_vec();
        put_u64(&mut copy, 48, 0);
        if fnv1a(&copy) != stored {
            return Err(WaflError::BadImage {
                reason: "fsinfo checksum mismatch".into(),
            });
        }
        Ok(FsInfo {
            cp_count: get_u64(&buf[..], 8),
            nblocks: get_u64(&buf[..], 16),
            next_ino: get_u32(&buf[..], 24),
            snaptable_bno: get_u32(&buf[..], 28),
            qtree_bno: get_u32(&buf[..], 32),
            tick: get_u64(&buf[..], 40),
            inofile: TreeRoot::read_from(&buf[..], 64),
            blkmapfile: TreeRoot::read_from(&buf[..], 64 + TREE_ROOT_SIZE),
        })
    }
}

/// One snapshot table entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapEntry {
    /// Bit plane id, 1..=20.
    pub id: SnapId,
    /// Snapshot name.
    pub name: String,
    /// Consistency point the snapshot captured.
    pub cp_count: u64,
    /// Creation time (ticks).
    pub created: u64,
    /// Root of the snapshot's inode file.
    pub inofile: TreeRoot,
}

/// Longest snapshot name stored on disk.
pub const MAX_SNAP_NAME: usize = 24;

/// Serializes the snapshot table into one block.
///
/// # Panics
///
/// Panics if more than 20 entries are passed (callers enforce the limit).
pub fn snaptable_to_block(entries: &[SnapEntry]) -> Block {
    assert!(entries.len() <= 20, "too many snapshots");
    let mut buf = vec![0u8; BLOCK_SIZE];
    buf[0] = entries.len() as u8;
    let mut off = 8;
    for e in entries {
        buf[off] = e.id;
        let name = &e.name.as_bytes()[..e.name.len().min(MAX_SNAP_NAME)];
        buf[off + 1] = name.len() as u8;
        buf[off + 2..off + 2 + name.len()].copy_from_slice(name);
        put_u64(&mut buf, off + 26, e.cp_count);
        put_u64(&mut buf, off + 34, e.created);
        e.inofile.write_to(&mut buf, off + 42);
        off += 42 + TREE_ROOT_SIZE;
    }
    Block::from_bytes(&buf)
}

/// Parses a snapshot table block.
pub fn snaptable_from_block(block: &Block) -> Vec<SnapEntry> {
    let buf = block.materialize();
    let n = buf[0] as usize;
    let mut entries = Vec::with_capacity(n);
    let mut off = 8;
    for _ in 0..n {
        let id = buf[off];
        let name_len = buf[off + 1] as usize;
        let name = String::from_utf8_lossy(&buf[off + 2..off + 2 + name_len]).into_owned();
        entries.push(SnapEntry {
            id,
            name,
            cp_count: get_u64(&buf[..], off + 26),
            created: get_u64(&buf[..], off + 34),
            inofile: TreeRoot::read_from(&buf[..], off + 42),
        });
        off += 42 + TREE_ROOT_SIZE;
    }
    entries
}

/// One qtree table entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QtreeEntry {
    /// Qtree id (1-based; 0 means "no qtree").
    pub id: u16,
    /// Root directory inode.
    pub root_ino: Ino,
    /// Qtree name.
    pub name: String,
    /// Bytes charged to the qtree.
    pub bytes_used: u64,
    /// Files charged to the qtree.
    pub files_used: u64,
    /// Byte limit (0 = unlimited).
    pub limit_bytes: u64,
}

/// Longest qtree name stored on disk.
pub const MAX_QTREE_NAME: usize = 32;

/// Serializes the qtree table into one block (up to 64 qtrees).
///
/// # Panics
///
/// Panics if more than 64 entries are passed.
pub fn qtrees_to_block(entries: &[QtreeEntry]) -> Block {
    assert!(entries.len() <= 64, "too many qtrees");
    let mut buf = vec![0u8; BLOCK_SIZE];
    buf[0] = entries.len() as u8;
    let mut off = 8;
    for e in entries {
        put_u16(&mut buf, off, e.id);
        put_u32(&mut buf, off + 2, e.root_ino);
        put_u64(&mut buf, off + 6, e.bytes_used);
        put_u64(&mut buf, off + 14, e.files_used);
        put_u64(&mut buf, off + 22, e.limit_bytes);
        let name = &e.name.as_bytes()[..e.name.len().min(MAX_QTREE_NAME)];
        buf[off + 30] = name.len() as u8;
        buf[off + 31..off + 31 + name.len()].copy_from_slice(name);
        off += 31 + MAX_QTREE_NAME;
    }
    Block::from_bytes(&buf)
}

/// Parses a qtree table block.
pub fn qtrees_from_block(block: &Block) -> Vec<QtreeEntry> {
    let buf = block.materialize();
    let n = buf[0] as usize;
    let mut entries = Vec::with_capacity(n);
    let mut off = 8;
    for _ in 0..n {
        let name_len = buf[off + 30] as usize;
        entries.push(QtreeEntry {
            id: get_u16(&buf[..], off),
            root_ino: get_u32(&buf[..], off + 2),
            bytes_used: get_u64(&buf[..], off + 6),
            files_used: get_u64(&buf[..], off + 14),
            limit_bytes: get_u64(&buf[..], off + 22),
            name: String::from_utf8_lossy(&buf[off + 31..off + 31 + name_len]).into_owned(),
        });
        off += 31 + MAX_QTREE_NAME;
    }
    entries
}

/// Serializes a pointer block (indirect blocks and block-map words share
/// the 1024-times-u32 shape).
pub fn ptrs_to_block(ptrs: &[u32]) -> Block {
    assert!(ptrs.len() <= BLOCK_SIZE / 4, "too many pointers");
    let mut buf = vec![0u8; BLOCK_SIZE];
    for (i, &p) in ptrs.iter().enumerate() {
        put_u32(&mut buf, 4 * i, p);
    }
    Block::from_bytes(&buf)
}

/// Parses a pointer block.
pub fn ptrs_from_block(block: &Block) -> Vec<u32> {
    let buf = block.materialize();
    (0..BLOCK_SIZE / 4)
        .map(|i| get_u32(&buf[..], 4 * i))
        .collect()
}

/// Packs directory entries into blocks. Each entry is `[ino u32][len
/// u8][name]`; ino 0 terminates a block. Entries never span blocks.
///
/// # Panics
///
/// Panics on names longer than [`MAX_NAME`] (validated at create time).
pub fn dir_to_blocks<'a>(entries: impl Iterator<Item = (&'a str, Ino)>) -> Vec<Block> {
    let mut blocks = Vec::new();
    let mut buf = vec![0u8; BLOCK_SIZE];
    let mut off = 0;
    for (name, ino) in entries {
        assert!(!name.is_empty() && name.len() <= MAX_NAME, "bad name");
        assert!(ino != 0, "cannot store the invalid inode");
        let need = 5 + name.len();
        if off + need + 4 > BLOCK_SIZE {
            blocks.push(Block::from_bytes(&buf));
            buf = vec![0u8; BLOCK_SIZE];
            off = 0;
        }
        put_u32(&mut buf, off, ino);
        buf[off + 4] = name.len() as u8;
        buf[off + 5..off + 5 + name.len()].copy_from_slice(name.as_bytes());
        off += need;
    }
    if off > 0 || blocks.is_empty() {
        blocks.push(Block::from_bytes(&buf));
    }
    blocks
}

/// Parses one directory block into `(name, ino)` pairs.
pub fn dir_from_block(block: &Block) -> Vec<(String, Ino)> {
    let buf = block.materialize();
    let mut entries = Vec::new();
    let mut off = 0;
    while off + 5 <= BLOCK_SIZE {
        let ino = get_u32(&buf[..], off);
        if ino == 0 {
            break;
        }
        let len = buf[off + 4] as usize;
        let name = String::from_utf8_lossy(&buf[off + 5..off + 5 + len]).into_owned();
        entries.push((name, ino));
        off += 5 + len;
    }
    entries
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_inode() -> DiskInode {
        DiskInode {
            ftype: Some(FileType::File),
            attrs: Attrs {
                perm: 0o644,
                uid: 501,
                gid: 100,
                mtime: 123,
                ctime: 124,
                atime: 125,
                dos_attrs: 0x22,
                dos_time: 999,
                dos_name: Some("LEGACY~1.TXT".into()),
                nt_acl: Some(vec![1, 2, 3, 4, 5]),
            },
            nlink: 2,
            qtree: 3,
            gen: 7,
            root: TreeRoot {
                size: 123456,
                direct: [9; NDIRECT],
                indirect: 42,
                dindirect: 43,
            },
        }
    }

    #[test]
    fn inode_round_trips() {
        let ino = sample_inode();
        let mut slot = vec![0u8; INODE_SIZE];
        ino.write_to(&mut slot);
        assert_eq!(DiskInode::read_from(&slot), ino);
    }

    #[test]
    fn free_inode_round_trips() {
        let mut slot = vec![0u8; INODE_SIZE];
        DiskInode::free().write_to(&mut slot);
        let back = DiskInode::read_from(&slot);
        assert_eq!(back.ftype, None);
        assert_eq!(back.attrs.dos_name, None);
        assert_eq!(back.attrs.nt_acl, None);
    }

    #[test]
    fn tree_root_round_trips_at_offset() {
        let root = TreeRoot {
            size: 777,
            direct: core::array::from_fn(|i| i as u32 * 3),
            indirect: 55,
            dindirect: 66,
        };
        let mut buf = vec![0u8; 256];
        root.write_to(&mut buf, 100);
        assert_eq!(TreeRoot::read_from(&buf, 100), root);
    }

    #[test]
    fn fsinfo_round_trips_with_checksum() {
        let fi = FsInfo {
            cp_count: 12,
            nblocks: 100_000,
            next_ino: 500,
            snaptable_bno: 7,
            qtree_bno: 8,
            tick: 42,
            inofile: TreeRoot {
                size: 8192,
                direct: [3; NDIRECT],
                indirect: 0,
                dindirect: 0,
            },
            blkmapfile: TreeRoot {
                size: 4096,
                direct: [9; NDIRECT],
                indirect: 11,
                dindirect: 0,
            },
        };
        let block = fi.to_block();
        assert_eq!(FsInfo::from_block(&block).unwrap(), fi);
    }

    #[test]
    fn fsinfo_rejects_corruption() {
        let fi = FsInfo {
            cp_count: 1,
            nblocks: 10,
            next_ino: 3,
            snaptable_bno: 0,
            qtree_bno: 0,
            tick: 0,
            inofile: TreeRoot::default(),
            blkmapfile: TreeRoot::default(),
        };
        let mut bytes = fi.to_block().materialize();
        bytes[20] ^= 0xff;
        let err = FsInfo::from_block(&Block::Bytes(bytes)).unwrap_err();
        assert!(matches!(err, WaflError::BadImage { .. }));
        // And garbage fails on magic.
        assert!(FsInfo::from_block(&Block::Zero).is_err());
    }

    #[test]
    fn snaptable_round_trips_and_fits() {
        let entries: Vec<SnapEntry> = (1..=20)
            .map(|i| SnapEntry {
                id: i as SnapId,
                name: format!("hourly.{i}"),
                cp_count: 100 + i as u64,
                created: 200 + i as u64,
                inofile: TreeRoot {
                    size: i as u64 * 4096,
                    direct: [i as u32; NDIRECT],
                    indirect: i as u32,
                    dindirect: 0,
                },
            })
            .collect();
        let block = snaptable_to_block(&entries);
        assert_eq!(snaptable_from_block(&block), entries);
    }

    #[test]
    fn empty_snaptable_round_trips() {
        assert_eq!(snaptable_from_block(&snaptable_to_block(&[])), vec![]);
    }

    #[test]
    fn qtree_table_round_trips() {
        let entries = vec![
            QtreeEntry {
                id: 1,
                root_ino: 10,
                name: "proj".into(),
                bytes_used: 1 << 30,
                files_used: 12345,
                limit_bytes: 0,
            },
            QtreeEntry {
                id: 2,
                root_ino: 11,
                name: "eng".into(),
                bytes_used: 77,
                files_used: 1,
                limit_bytes: 1 << 20,
            },
        ];
        let block = qtrees_to_block(&entries);
        assert_eq!(qtrees_from_block(&block), entries);
    }

    #[test]
    fn ptr_blocks_round_trip() {
        let ptrs: Vec<u32> = (0..1024).map(|i| i * 7).collect();
        assert_eq!(ptrs_from_block(&ptrs_to_block(&ptrs)), ptrs);
        // Short pointer arrays are zero-extended.
        let short = ptrs_from_block(&ptrs_to_block(&[5, 6]));
        assert_eq!(short[0], 5);
        assert_eq!(short[2], 0);
        assert_eq!(short.len(), 1024);
    }

    #[test]
    fn dir_blocks_round_trip() {
        let entries = vec![
            ("alpha".to_string(), 10u32),
            ("beta".to_string(), 11),
            ("a-much-longer-file-name.tar.gz".to_string(), 12),
        ];
        let blocks = dir_to_blocks(entries.iter().map(|(n, i)| (n.as_str(), *i)));
        assert_eq!(blocks.len(), 1);
        assert_eq!(dir_from_block(&blocks[0]), entries);
    }

    #[test]
    fn big_dirs_span_blocks() {
        let entries: Vec<(String, Ino)> = (0..1000)
            .map(|i| (format!("file-number-{i:05}"), i + 3))
            .collect();
        let blocks = dir_to_blocks(entries.iter().map(|(n, i)| (n.as_str(), *i)));
        assert!(blocks.len() > 1);
        let mut back = Vec::new();
        for b in &blocks {
            back.extend(dir_from_block(b));
        }
        assert_eq!(back, entries);
    }

    #[test]
    fn empty_dir_serializes_to_one_empty_block() {
        let blocks = dir_to_blocks(std::iter::empty());
        assert_eq!(blocks.len(), 1);
        assert!(dir_from_block(&blocks[0]).is_empty());
    }
}
