//! The block map: 32 bits of allocation state per volume block.
//!
//! Paper §2.1: "WAFL's free block data structure contains 32 bits per block
//! ... The live file system as well as each snapshot is allocated a bit
//! plane; a block is free only when it is not marked as belonging to either
//! the live file system or any snapshot."
//!
//! Plane 0 is the active file system; planes 1..=20 are snapshots. The
//! set-difference iterators implement the paper's incremental image dump
//! arithmetic (`B − A`, Table 1).

use std::collections::BTreeSet;

use crate::types::SnapId;

/// Block-map words per 4 KiB block when serialized.
pub const WORDS_PER_BLOCK: u64 = 1024;

/// The bit used by the active file system.
pub const ACTIVE_PLANE: u8 = 0;

/// Table 1 of the paper: the four states a block can be in with respect to
/// a full-dump snapshot `A` and an incremental-dump snapshot `B`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Table1State {
    /// `A=0, B=0`: not in either snapshot.
    NotInEither,
    /// `A=0, B=1`: newly written — include in the incremental.
    NewlyWritten,
    /// `A=1, B=0`: deleted since the full dump — no need to include.
    Deleted,
    /// `A=1, B=1`: needed, but not changed since the full dump.
    Unchanged,
}

/// The in-memory block map (mirrors what the next consistency point will
/// serialize into the block-map file).
#[derive(Debug, Clone)]
pub struct BlkMap {
    words: Vec<u32>,
    /// Serialized chunks (of [`WORDS_PER_BLOCK`] words) changed since the
    /// last consistency point.
    dirty: BTreeSet<u64>,
}

impl BlkMap {
    /// An all-free map for `nblocks` blocks.
    pub fn new(nblocks: u64) -> BlkMap {
        BlkMap {
            words: vec![0; nblocks as usize],
            dirty: BTreeSet::new(),
        }
    }

    /// Rebuilds a map from parsed words (mount path).
    pub fn from_words(words: Vec<u32>) -> BlkMap {
        BlkMap {
            words,
            dirty: BTreeSet::new(),
        }
    }

    /// Number of blocks tracked.
    pub fn nblocks(&self) -> u64 {
        self.words.len() as u64
    }

    /// The raw 32-bit word for a block.
    pub fn word(&self, bno: u64) -> u32 {
        self.words[bno as usize]
    }

    fn mark_dirty(&mut self, bno: u64) {
        self.dirty.insert(bno / WORDS_PER_BLOCK);
    }

    /// Whether the block is completely unreferenced.
    pub fn is_free(&self, bno: u64) -> bool {
        self.words[bno as usize] == 0
    }

    /// Whether the active file system references the block.
    pub fn is_active(&self, bno: u64) -> bool {
        self.words[bno as usize] & 1 != 0
    }

    /// Whether snapshot `id` references the block.
    pub fn in_snapshot(&self, bno: u64, id: SnapId) -> bool {
        debug_assert!((1..=20).contains(&id));
        self.words[bno as usize] & (1 << id) != 0
    }

    /// Marks a block as used by the active file system.
    pub fn set_active(&mut self, bno: u64) {
        self.words[bno as usize] |= 1;
        self.mark_dirty(bno);
    }

    /// Clears the active bit.
    pub fn clear_active(&mut self, bno: u64) {
        self.words[bno as usize] &= !1;
        self.mark_dirty(bno);
    }

    /// Creates snapshot `id` by copying the active plane into plane `id`
    /// (the paper's "duplicate copy of the root data structure ... block
    /// allocation information"). Returns the number of blocks captured.
    pub fn snap_create(&mut self, id: SnapId) -> u64 {
        debug_assert!((1..=20).contains(&id));
        let bit = 1u32 << id;
        let mut captured = 0;
        for w in self.words.iter_mut() {
            if *w & 1 != 0 {
                *w |= bit;
                captured += 1;
            } else {
                *w &= !bit;
            }
        }
        self.dirty.extend(0..self.nchunks());
        captured
    }

    /// Deletes snapshot `id` by clearing its plane; blocks held only by it
    /// become free.
    pub fn snap_delete(&mut self, id: SnapId) {
        debug_assert!((1..=20).contains(&id));
        let bit = !(1u32 << id);
        for w in self.words.iter_mut() {
            *w &= bit;
        }
        self.dirty.extend(0..self.nchunks());
    }

    /// Blocks referenced by plane `plane` (0 = active).
    pub fn count_plane(&self, plane: u8) -> u64 {
        let bit = 1u32 << plane;
        self.words.iter().filter(|&&w| w & bit != 0).count() as u64
    }

    /// Completely free blocks.
    pub fn count_free(&self) -> u64 {
        self.words.iter().filter(|&&w| w == 0).count() as u64
    }

    /// Iterates blocks in plane `plane`.
    pub fn iter_plane(&self, plane: u8) -> impl Iterator<Item = u64> + '_ {
        let bit = 1u32 << plane;
        self.words
            .iter()
            .enumerate()
            .filter(move |(_, &w)| w & bit != 0)
            .map(|(i, _)| i as u64)
    }

    /// Iterates the incremental dump set: blocks in plane `b` but not in
    /// plane `a` (the paper's `B − A`).
    pub fn iter_diff(&self, b: u8, a: u8) -> impl Iterator<Item = u64> + '_ {
        let bit_b = 1u32 << b;
        let bit_a = 1u32 << a;
        self.words
            .iter()
            .enumerate()
            .filter(move |(_, &w)| w & bit_b != 0 && w & bit_a == 0)
            .map(|(i, _)| i as u64)
    }

    /// Classifies a block per Table 1 with respect to full-dump snapshot
    /// `a` and incremental snapshot `b`.
    pub fn table1_state(&self, bno: u64, a: SnapId, b: SnapId) -> Table1State {
        match (self.in_snapshot(bno, a), self.in_snapshot(bno, b)) {
            (false, false) => Table1State::NotInEither,
            (false, true) => Table1State::NewlyWritten,
            (true, false) => Table1State::Deleted,
            (true, true) => Table1State::Unchanged,
        }
    }

    /// Number of serialized 4 KiB chunks.
    pub fn nchunks(&self) -> u64 {
        self.nblocks().div_ceil(WORDS_PER_BLOCK)
    }

    /// The words of serialized chunk `chunk` (zero-padded at the tail).
    pub fn chunk_words(&self, chunk: u64) -> Vec<u32> {
        let start = (chunk * WORDS_PER_BLOCK) as usize;
        let end = ((chunk + 1) * WORDS_PER_BLOCK).min(self.nblocks()) as usize;
        self.words[start..end].to_vec()
    }

    /// Takes the set of dirty chunk indices, clearing it.
    pub fn take_dirty(&mut self) -> BTreeSet<u64> {
        std::mem::take(&mut self.dirty)
    }

    /// Marks every chunk dirty (used by whole-map rewrites in tests).
    pub fn mark_all_dirty(&mut self) {
        self.dirty.extend(0..self.nchunks());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_map_is_all_free() {
        let m = BlkMap::new(100);
        assert_eq!(m.count_free(), 100);
        assert_eq!(m.count_plane(0), 0);
        assert!(m.is_free(50));
    }

    #[test]
    fn active_bits_set_and_clear() {
        let mut m = BlkMap::new(10);
        m.set_active(3);
        assert!(m.is_active(3));
        assert!(!m.is_free(3));
        m.clear_active(3);
        assert!(m.is_free(3));
    }

    #[test]
    fn snapshot_holds_blocks_after_active_clear() {
        let mut m = BlkMap::new(10);
        m.set_active(2);
        m.snap_create(1);
        m.clear_active(2);
        // Paper: the block must not be reused until the snapshot is gone.
        assert!(!m.is_free(2));
        assert!(m.in_snapshot(2, 1));
        m.snap_delete(1);
        assert!(m.is_free(2));
    }

    #[test]
    fn snap_create_copies_exactly_the_active_plane() {
        let mut m = BlkMap::new(8);
        m.set_active(1);
        m.set_active(5);
        let captured = m.snap_create(2);
        assert_eq!(captured, 2);
        assert!(m.in_snapshot(1, 2));
        assert!(m.in_snapshot(5, 2));
        assert!(!m.in_snapshot(0, 2));
        // Stale bits from a previous use of the plane are cleared.
        m.set_active(7);
        m.snap_create(2);
        m.clear_active(1);
        m.snap_create(3);
        assert!(m.in_snapshot(1, 2));
        assert!(!m.in_snapshot(1, 3));
    }

    #[test]
    fn diff_implements_b_minus_a() {
        let mut m = BlkMap::new(8);
        // Full dump at snapshot 1 holds {0, 1}.
        m.set_active(0);
        m.set_active(1);
        m.snap_create(1);
        // Block 1 deleted, blocks 2,3 written, then snapshot 2.
        m.clear_active(1);
        m.set_active(2);
        m.set_active(3);
        m.snap_create(2);
        let diff: Vec<u64> = m.iter_diff(2, 1).collect();
        assert_eq!(diff, vec![2, 3]);
    }

    #[test]
    fn table1_states_match_the_paper() {
        let mut m = BlkMap::new(4);
        // Block 0: in neither. Block 1: only in B. Block 2: only in A.
        // Block 3: in both.
        m.set_active(2);
        m.set_active(3);
        m.snap_create(1); // A
        m.clear_active(2);
        m.set_active(1);
        m.snap_create(2); // B
        assert_eq!(m.table1_state(0, 1, 2), Table1State::NotInEither);
        assert_eq!(m.table1_state(1, 1, 2), Table1State::NewlyWritten);
        assert_eq!(m.table1_state(2, 1, 2), Table1State::Deleted);
        assert_eq!(m.table1_state(3, 1, 2), Table1State::Unchanged);
        // The incremental set is exactly the NewlyWritten blocks.
        let diff: Vec<u64> = m.iter_diff(2, 1).collect();
        assert_eq!(diff, vec![1]);
    }

    #[test]
    fn chunks_serialize_words() {
        let mut m = BlkMap::new(2000);
        m.set_active(0);
        m.set_active(1999);
        assert_eq!(m.nchunks(), 2);
        let c0 = m.chunk_words(0);
        let c1 = m.chunk_words(1);
        assert_eq!(c0.len(), 1024);
        assert_eq!(c1.len(), 976);
        assert_eq!(c0[0], 1);
        assert_eq!(c1[975], 1);
    }

    #[test]
    fn dirty_tracking_follows_mutations() {
        let mut m = BlkMap::new(3000);
        assert!(m.take_dirty().is_empty());
        m.set_active(0);
        m.set_active(2500);
        let dirty = m.take_dirty();
        assert_eq!(dirty.into_iter().collect::<Vec<_>>(), vec![0, 2]);
        // Snapshot ops dirty everything.
        m.snap_create(1);
        assert_eq!(m.take_dirty().len(), 3 /* chunks */);
    }

    #[test]
    fn round_trip_through_chunk_words() {
        let mut m = BlkMap::new(1500);
        for b in [0u64, 7, 1023, 1024, 1499] {
            m.set_active(b);
        }
        m.snap_create(4);
        let mut words = Vec::new();
        for c in 0..m.nchunks() {
            words.extend(m.chunk_words(c));
        }
        let back = BlkMap::from_words(words);
        assert_eq!(back.nblocks(), 1500);
        for b in [0u64, 7, 1023, 1024, 1499] {
            assert!(back.is_active(b));
            assert!(back.in_snapshot(b, 4));
        }
        assert_eq!(back.count_plane(0), 5);
    }
}
