//! The block map: 32 bits of allocation state per volume block.
//!
//! Paper §2.1: "WAFL's free block data structure contains 32 bits per block
//! ... The live file system as well as each snapshot is allocated a bit
//! plane; a block is free only when it is not marked as belonging to either
//! the live file system or any snapshot."
//!
//! Plane 0 is the active file system; planes 1..=20 are snapshots. The
//! set-difference iterators implement the paper's incremental image dump
//! arithmetic (`B − A`, Table 1).
//!
//! The map is stored plane-major: each plane is a `u64` bitset over block
//! numbers, so snapshot creation, Table 1 set arithmetic, and free-block
//! census all run 64 blocks per machine op. The on-disk format is unchanged
//! (one little-endian `u32` of plane bits per block, 1024 words per 4 KiB
//! chunk); [`BlkMap::chunk_words`] gathers the planes back into that layout
//! and [`BlkMap::from_words`] scatters it out again on mount.

use std::collections::BTreeSet;

use crate::types::SnapId;
use crate::types::MAX_SNAPSHOTS;

/// Block-map words per 4 KiB block when serialized.
pub const WORDS_PER_BLOCK: u64 = 1024;

/// The bit used by the active file system.
pub const ACTIVE_PLANE: u8 = 0;

/// Number of bit planes (active + snapshots).
const NPLANES: usize = MAX_SNAPSHOTS as usize + 1;

/// Table 1 of the paper: the four states a block can be in with respect to
/// a full-dump snapshot `A` and an incremental-dump snapshot `B`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Table1State {
    /// `A=0, B=0`: not in either snapshot.
    NotInEither,
    /// `A=0, B=1`: newly written — include in the incremental.
    NewlyWritten,
    /// `A=1, B=0`: deleted since the full dump — no need to include.
    Deleted,
    /// `A=1, B=1`: needed, but not changed since the full dump.
    Unchanged,
}

/// A plain `u64` bitset over block numbers, used for the frozen-block set
/// and as scratch in word-level scans. Grows on demand; absent words read
/// as zero.
#[derive(Debug, Clone, Default)]
pub struct BlockSet {
    words: Vec<u64>,
}

impl BlockSet {
    /// An empty set.
    pub fn new() -> BlockSet {
        BlockSet::default()
    }

    /// Inserts `bno`.
    pub fn insert(&mut self, bno: u64) {
        let w = (bno / 64) as usize;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= 1u64 << (bno % 64);
    }

    /// Whether `bno` is in the set.
    pub fn contains(&self, bno: u64) -> bool {
        let w = (bno / 64) as usize;
        w < self.words.len() && self.words[w] >> (bno % 64) & 1 != 0
    }

    /// Removes every element.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// True if no element is present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of elements.
    pub fn len(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Inserts every block from `iter`.
    pub fn extend(&mut self, iter: impl IntoIterator<Item = u64>) {
        for bno in iter {
            self.insert(bno);
        }
    }

    /// The backing word at index `w` (zero if beyond the allocated tail).
    fn word(&self, w: usize) -> u64 {
        self.words.get(w).copied().unwrap_or(0)
    }

    /// Iterates members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        iter_bits(&self.words)
    }
}

/// Iterates the set bit positions of a word slice in ascending order.
fn iter_bits(words: &[u64]) -> impl Iterator<Item = u64> + '_ {
    words.iter().enumerate().flat_map(|(i, &w)| {
        let base = i as u64 * 64;
        std::iter::successors(if w == 0 { None } else { Some(w) }, |&rest| {
            let rest = rest & (rest - 1);
            if rest == 0 {
                None
            } else {
                Some(rest)
            }
        })
        .map(move |rest| base + rest.trailing_zeros() as u64)
    })
}

/// The in-memory block map (mirrors what the next consistency point will
/// serialize into the block-map file).
#[derive(Debug, Clone)]
pub struct BlkMap {
    nblocks: u64,
    /// One bitset per plane: `planes[0]` is the active file system,
    /// `planes[1..=20]` are snapshots.
    planes: Vec<Vec<u64>>,
    /// Maintained OR of every snapshot plane, so `is_free` is two loads.
    /// Recomputed on snapshot deletion.
    snap_union: Vec<u64>,
    /// Serialized chunks (of [`WORDS_PER_BLOCK`] words) changed since the
    /// last consistency point, as a bitset over chunk indices.
    dirty: Vec<u64>,
    /// Blocks whose serialized word set bits above the last legal plane
    /// (recorded at mount so `wafl::check` can still report corruption
    /// that the plane-major layout cannot represent).
    undefined: Vec<(u64, u32)>,
}

impl BlkMap {
    /// An all-free map for `nblocks` blocks.
    pub fn new(nblocks: u64) -> BlkMap {
        let nwords = nblocks.div_ceil(64) as usize;
        let nchunks = nblocks.div_ceil(WORDS_PER_BLOCK);
        BlkMap {
            nblocks,
            planes: vec![vec![0u64; nwords]; NPLANES],
            snap_union: vec![0u64; nwords],
            dirty: vec![0u64; (nchunks.div_ceil(64)) as usize],
            undefined: Vec::new(),
        }
    }

    /// Rebuilds a map from parsed words (mount path).
    pub fn from_words(words: Vec<u32>) -> BlkMap {
        let legal: u32 = (1u32 << NPLANES) - 1;
        let mut m = BlkMap::new(words.len() as u64);
        for (bno, &w) in words.iter().enumerate() {
            if w & !legal != 0 {
                m.undefined.push((bno as u64, w));
            }
            let mut rest = w & legal;
            while rest != 0 {
                let p = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                m.planes[p][bno / 64] |= 1u64 << (bno % 64);
            }
        }
        for p in 1..NPLANES {
            for (u, &w) in m.snap_union.iter_mut().zip(&m.planes[p]) {
                *u |= w;
            }
        }
        m
    }

    /// Number of blocks tracked.
    pub fn nblocks(&self) -> u64 {
        self.nblocks
    }

    /// The raw 32-bit word for a block (plane bits gathered).
    pub fn word(&self, bno: u64) -> u32 {
        let (w, bit) = (bno as usize / 64, bno % 64);
        let mut out = 0u32;
        for (p, plane) in self.planes.iter().enumerate() {
            out |= ((plane[w] >> bit & 1) as u32) << p;
        }
        out
    }

    fn mark_dirty(&mut self, bno: u64) {
        let chunk = bno / WORDS_PER_BLOCK;
        self.dirty[(chunk / 64) as usize] |= 1u64 << (chunk % 64);
    }

    /// Whether the block is completely unreferenced.
    pub fn is_free(&self, bno: u64) -> bool {
        let (w, bit) = (bno as usize / 64, bno % 64);
        (self.planes[0][w] | self.snap_union[w]) >> bit & 1 == 0
    }

    /// Whether the active file system references the block.
    pub fn is_active(&self, bno: u64) -> bool {
        self.planes[0][bno as usize / 64] >> (bno % 64) & 1 != 0
    }

    /// Whether snapshot `id` references the block.
    pub fn in_snapshot(&self, bno: u64, id: SnapId) -> bool {
        debug_assert!((1..=MAX_SNAPSHOTS).contains(&id));
        self.planes[id as usize][bno as usize / 64] >> (bno % 64) & 1 != 0
    }

    /// Marks a block as used by the active file system.
    pub fn set_active(&mut self, bno: u64) {
        self.planes[0][bno as usize / 64] |= 1u64 << (bno % 64);
        self.mark_dirty(bno);
    }

    /// Clears the active bit.
    pub fn clear_active(&mut self, bno: u64) {
        self.planes[0][bno as usize / 64] &= !(1u64 << (bno % 64));
        self.mark_dirty(bno);
    }

    /// Creates snapshot `id` by copying the active plane into plane `id`
    /// (the paper's "duplicate copy of the root data structure ... block
    /// allocation information"). Returns the number of blocks captured.
    pub fn snap_create(&mut self, id: SnapId) -> u64 {
        debug_assert!((1..=MAX_SNAPSHOTS).contains(&id));
        let (active, rest) = self.planes.split_at_mut(1);
        let plane = &mut rest[id as usize - 1];
        plane.copy_from_slice(&active[0]);
        let captured: u64 = active[0].iter().map(|w| w.count_ones() as u64).sum();
        // Plane reuse may have cleared stale bits, so the union is rebuilt.
        self.recompute_snap_union();
        self.mark_all_dirty();
        captured
    }

    /// Deletes snapshot `id` by clearing its plane; blocks held only by it
    /// become free.
    pub fn snap_delete(&mut self, id: SnapId) {
        debug_assert!((1..=MAX_SNAPSHOTS).contains(&id));
        self.planes[id as usize].iter_mut().for_each(|w| *w = 0);
        self.recompute_snap_union();
        self.mark_all_dirty();
    }

    fn recompute_snap_union(&mut self) {
        self.snap_union.iter_mut().for_each(|w| *w = 0);
        for p in 1..NPLANES {
            for (u, &w) in self.snap_union.iter_mut().zip(&self.planes[p]) {
                *u |= w;
            }
        }
    }

    /// Blocks referenced by plane `plane` (0 = active).
    pub fn count_plane(&self, plane: u8) -> u64 {
        self.planes[plane as usize]
            .iter()
            .map(|w| w.count_ones() as u64)
            .sum()
    }

    /// Completely free blocks.
    pub fn count_free(&self) -> u64 {
        let used: u64 = self.planes[0]
            .iter()
            .zip(&self.snap_union)
            .map(|(&a, &u)| (a | u).count_ones() as u64)
            .sum();
        self.nblocks - used
    }

    /// Iterates blocks in plane `plane`.
    pub fn iter_plane(&self, plane: u8) -> impl Iterator<Item = u64> + '_ {
        iter_bits(&self.planes[plane as usize])
    }

    /// Iterates blocks referenced by any plane (the image-dump used set).
    pub fn iter_used(&self) -> impl Iterator<Item = u64> + '_ {
        self.planes[0]
            .iter()
            .zip(&self.snap_union)
            .map(|(&a, &u)| a | u)
            .collect::<Vec<u64>>()
            .into_iter()
            .enumerate()
            .flat_map(|(i, w)| OneBits::new(i as u64 * 64, w))
    }

    /// Iterates used blocks that are *not* in snapshot `base` (the
    /// incremental image-dump set before Table 1 bookkeeping).
    pub fn iter_used_not_in(&self, base: SnapId) -> impl Iterator<Item = u64> + '_ {
        debug_assert!((1..=MAX_SNAPSHOTS).contains(&base));
        self.planes[0]
            .iter()
            .zip(&self.snap_union)
            .zip(&self.planes[base as usize])
            .map(|((&a, &u), &b)| (a | u) & !b)
            .collect::<Vec<u64>>()
            .into_iter()
            .enumerate()
            .flat_map(|(i, w)| OneBits::new(i as u64 * 64, w))
    }

    /// Iterates blocks whose *only* reference is snapshot `id` (the blocks
    /// that become free when it is deleted).
    pub fn iter_exclusive(&self, id: SnapId) -> impl Iterator<Item = u64> + '_ {
        debug_assert!((1..=MAX_SNAPSHOTS).contains(&id));
        let id = id as usize;
        (0..self.planes[0].len())
            .map(|w| {
                let mut others = self.planes[0][w];
                for (p, plane) in self.planes.iter().enumerate().skip(1) {
                    if p != id {
                        others |= plane[w];
                    }
                }
                self.planes[id][w] & !others
            })
            .collect::<Vec<u64>>()
            .into_iter()
            .enumerate()
            .flat_map(|(i, w)| OneBits::new(i as u64 * 64, w))
    }

    /// Finds the lowest free, un-frozen block in `[lo, hi)`, scanning a
    /// word (64 blocks) at a time.
    pub fn find_free(&self, lo: u64, hi: u64, frozen: &BlockSet) -> Option<u64> {
        if lo >= hi {
            return None;
        }
        let first = (lo / 64) as usize;
        let last = (hi.div_ceil(64) as usize).min(self.planes[0].len());
        for w in first..last {
            let mut mask = !(self.planes[0][w] | self.snap_union[w]) & !frozen.word(w);
            if w == first {
                mask &= !0u64 << (lo % 64);
            }
            if mask != 0 {
                let bno = w as u64 * 64 + mask.trailing_zeros() as u64;
                if bno < hi {
                    return Some(bno);
                }
            }
        }
        None
    }

    /// Iterates the incremental dump set: blocks in plane `b` but not in
    /// plane `a` (the paper's `B − A`).
    pub fn iter_diff(&self, b: u8, a: u8) -> impl Iterator<Item = u64> + '_ {
        self.planes[b as usize]
            .iter()
            .zip(&self.planes[a as usize])
            .map(|(&wb, &wa)| wb & !wa)
            .collect::<Vec<u64>>()
            .into_iter()
            .enumerate()
            .flat_map(|(i, w)| OneBits::new(i as u64 * 64, w))
    }

    /// Cardinality of the paper's `B − A` without materializing it.
    pub fn count_diff(&self, b: u8, a: u8) -> u64 {
        self.planes[b as usize]
            .iter()
            .zip(&self.planes[a as usize])
            .map(|(&wb, &wa)| (wb & !wa).count_ones() as u64)
            .sum()
    }

    /// Classifies a block per Table 1 with respect to full-dump snapshot
    /// `a` and incremental snapshot `b`.
    pub fn table1_state(&self, bno: u64, a: SnapId, b: SnapId) -> Table1State {
        match (self.in_snapshot(bno, a), self.in_snapshot(bno, b)) {
            (false, false) => Table1State::NotInEither,
            (false, true) => Table1State::NewlyWritten,
            (true, false) => Table1State::Deleted,
            (true, true) => Table1State::Unchanged,
        }
    }

    /// Number of serialized 4 KiB chunks.
    pub fn nchunks(&self) -> u64 {
        self.nblocks.div_ceil(WORDS_PER_BLOCK)
    }

    /// The words of serialized chunk `chunk` (zero-padded at the tail),
    /// gathered from the bit planes.
    pub fn chunk_words(&self, chunk: u64) -> Vec<u32> {
        let start = chunk * WORDS_PER_BLOCK;
        let end = ((chunk + 1) * WORDS_PER_BLOCK).min(self.nblocks);
        let mut out = vec![0u32; (end - start) as usize];
        for (p, plane) in self.planes.iter().enumerate() {
            let pbit = 1u32 << p;
            // The chunk spans whole u64 words: 1024 blocks = 16 words.
            let w0 = (start / 64) as usize;
            let w1 = (end.div_ceil(64) as usize).min(plane.len());
            for (w, &word) in plane.iter().enumerate().take(w1).skip(w0) {
                let mut rest = word;
                while rest != 0 {
                    let bno = w as u64 * 64 + rest.trailing_zeros() as u64;
                    rest &= rest - 1;
                    if bno >= end {
                        break;
                    }
                    out[(bno - start) as usize] |= pbit;
                }
            }
        }
        out
    }

    /// Takes the set of dirty chunk indices, clearing it.
    pub fn take_dirty(&mut self) -> BTreeSet<u64> {
        let mut out = BTreeSet::new();
        for (i, w) in self.dirty.iter_mut().enumerate() {
            let mut rest = *w;
            *w = 0;
            while rest != 0 {
                out.insert(i as u64 * 64 + rest.trailing_zeros() as u64);
                rest &= rest - 1;
            }
        }
        out
    }

    /// Blocks whose serialized word carried bits above the last legal
    /// plane when the map was mounted (corruption evidence for `check`).
    pub fn undefined_bits(&self) -> &[(u64, u32)] {
        &self.undefined
    }

    /// The backing bitset words of `plane` (64 blocks per word).
    pub fn plane_words(&self, plane: u8) -> &[u64] {
        &self.planes[plane as usize]
    }

    /// Marks every chunk dirty (used by whole-map rewrites in tests).
    pub fn mark_all_dirty(&mut self) {
        let nchunks = self.nchunks();
        for chunk in 0..nchunks {
            self.dirty[(chunk / 64) as usize] |= 1u64 << (chunk % 64);
        }
    }
}

/// Iterator over the set bits of one word, offset by a base block number.
struct OneBits {
    base: u64,
    rest: u64,
}

impl OneBits {
    fn new(base: u64, word: u64) -> OneBits {
        OneBits { base, rest: word }
    }
}

impl Iterator for OneBits {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.rest == 0 {
            return None;
        }
        let bit = self.rest.trailing_zeros() as u64;
        self.rest &= self.rest - 1;
        Some(self.base + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_map_is_all_free() {
        let m = BlkMap::new(100);
        assert_eq!(m.count_free(), 100);
        assert_eq!(m.count_plane(0), 0);
        assert!(m.is_free(50));
    }

    #[test]
    fn active_bits_set_and_clear() {
        let mut m = BlkMap::new(10);
        m.set_active(3);
        assert!(m.is_active(3));
        assert!(!m.is_free(3));
        m.clear_active(3);
        assert!(m.is_free(3));
    }

    #[test]
    fn snapshot_holds_blocks_after_active_clear() {
        let mut m = BlkMap::new(10);
        m.set_active(2);
        m.snap_create(1);
        m.clear_active(2);
        // Paper: the block must not be reused until the snapshot is gone.
        assert!(!m.is_free(2));
        assert!(m.in_snapshot(2, 1));
        m.snap_delete(1);
        assert!(m.is_free(2));
    }

    #[test]
    fn snap_create_copies_exactly_the_active_plane() {
        let mut m = BlkMap::new(8);
        m.set_active(1);
        m.set_active(5);
        let captured = m.snap_create(2);
        assert_eq!(captured, 2);
        assert!(m.in_snapshot(1, 2));
        assert!(m.in_snapshot(5, 2));
        assert!(!m.in_snapshot(0, 2));
        // Stale bits from a previous use of the plane are cleared.
        m.set_active(7);
        m.snap_create(2);
        m.clear_active(1);
        m.snap_create(3);
        assert!(m.in_snapshot(1, 2));
        assert!(!m.in_snapshot(1, 3));
    }

    #[test]
    fn diff_implements_b_minus_a() {
        let mut m = BlkMap::new(8);
        // Full dump at snapshot 1 holds {0, 1}.
        m.set_active(0);
        m.set_active(1);
        m.snap_create(1);
        // Block 1 deleted, blocks 2,3 written, then snapshot 2.
        m.clear_active(1);
        m.set_active(2);
        m.set_active(3);
        m.snap_create(2);
        let diff: Vec<u64> = m.iter_diff(2, 1).collect();
        assert_eq!(diff, vec![2, 3]);
        assert_eq!(m.count_diff(2, 1), 2);
    }

    #[test]
    fn table1_states_match_the_paper() {
        let mut m = BlkMap::new(4);
        // Block 0: in neither. Block 1: only in B. Block 2: only in A.
        // Block 3: in both.
        m.set_active(2);
        m.set_active(3);
        m.snap_create(1); // A
        m.clear_active(2);
        m.set_active(1);
        m.snap_create(2); // B
        assert_eq!(m.table1_state(0, 1, 2), Table1State::NotInEither);
        assert_eq!(m.table1_state(1, 1, 2), Table1State::NewlyWritten);
        assert_eq!(m.table1_state(2, 1, 2), Table1State::Deleted);
        assert_eq!(m.table1_state(3, 1, 2), Table1State::Unchanged);
        // The incremental set is exactly the NewlyWritten blocks.
        let diff: Vec<u64> = m.iter_diff(2, 1).collect();
        assert_eq!(diff, vec![1]);
    }

    #[test]
    fn chunks_serialize_words() {
        let mut m = BlkMap::new(2000);
        m.set_active(0);
        m.set_active(1999);
        assert_eq!(m.nchunks(), 2);
        let c0 = m.chunk_words(0);
        let c1 = m.chunk_words(1);
        assert_eq!(c0.len(), 1024);
        assert_eq!(c1.len(), 976);
        assert_eq!(c0[0], 1);
        assert_eq!(c1[975], 1);
    }

    #[test]
    fn dirty_tracking_follows_mutations() {
        let mut m = BlkMap::new(3000);
        assert!(m.take_dirty().is_empty());
        m.set_active(0);
        m.set_active(2500);
        let dirty = m.take_dirty();
        assert_eq!(dirty.into_iter().collect::<Vec<_>>(), vec![0, 2]);
        // Snapshot ops dirty everything.
        m.snap_create(1);
        assert_eq!(m.take_dirty().len(), 3 /* chunks */);
    }

    #[test]
    fn round_trip_through_chunk_words() {
        let mut m = BlkMap::new(1500);
        for b in [0u64, 7, 1023, 1024, 1499] {
            m.set_active(b);
        }
        m.snap_create(4);
        let mut words = Vec::new();
        for c in 0..m.nchunks() {
            words.extend(m.chunk_words(c));
        }
        let back = BlkMap::from_words(words);
        assert_eq!(back.nblocks(), 1500);
        for b in [0u64, 7, 1023, 1024, 1499] {
            assert!(back.is_active(b));
            assert!(back.in_snapshot(b, 4));
        }
        assert_eq!(back.count_plane(0), 5);
    }

    #[test]
    fn word_gathers_plane_bits() {
        let mut m = BlkMap::new(100);
        m.set_active(65);
        m.snap_create(3);
        assert_eq!(m.word(65), 1 | (1 << 3));
        assert_eq!(m.word(64), 0);
    }

    #[test]
    fn word_level_iterators_match_scalar_filters() {
        let mut m = BlkMap::new(300);
        for b in [2u64, 63, 64, 130, 299] {
            m.set_active(b);
        }
        m.snap_create(1);
        m.clear_active(63);
        m.set_active(200);
        let used: Vec<u64> = m.iter_used().collect();
        let scalar_used: Vec<u64> = (0..300).filter(|&b| !m.is_free(b)).collect();
        assert_eq!(used, scalar_used);
        let not_in: Vec<u64> = m.iter_used_not_in(1).collect();
        let scalar: Vec<u64> = (0..300)
            .filter(|&b| !m.is_free(b) && !m.in_snapshot(b, 1))
            .collect();
        assert_eq!(not_in, scalar);
        let excl: Vec<u64> = m.iter_exclusive(1).collect();
        let scalar_excl: Vec<u64> = (0..300).filter(|&b| m.word(b) == 1 << 1).collect();
        assert_eq!(excl, scalar_excl);
    }

    #[test]
    fn find_free_skips_used_and_frozen() {
        let mut m = BlkMap::new(200);
        for b in 0..66 {
            m.set_active(b);
        }
        let mut frozen = BlockSet::new();
        frozen.insert(66);
        frozen.insert(67);
        assert_eq!(m.find_free(0, 200, &frozen), Some(68));
        assert_eq!(m.find_free(100, 200, &BlockSet::new()), Some(100));
        assert_eq!(m.find_free(199, 200, &BlockSet::new()), Some(199));
        m.set_active(199);
        assert_eq!(m.find_free(199, 200, &BlockSet::new()), None);
        assert_eq!(m.find_free(150, 120, &BlockSet::new()), None);
    }

    #[test]
    fn blockset_basics() {
        let mut s = BlockSet::new();
        assert!(s.is_empty());
        s.extend([3u64, 64, 1000]);
        assert!(s.contains(64));
        assert!(!s.contains(65));
        assert_eq!(s.len(), 3);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 64, 1000]);
        s.clear();
        assert!(s.is_empty());
    }
}
