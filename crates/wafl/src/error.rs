//! File system errors.

use crate::types::Ino;
use crate::types::SnapId;

/// Errors surfaced by the file system.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WaflError {
    /// No such file or directory.
    NotFound {
        /// What was being looked up.
        what: String,
    },
    /// A name already exists in the target directory.
    Exists {
        /// The conflicting name.
        name: String,
    },
    /// Operation requires a directory but the inode is a file (or vice
    /// versa).
    WrongType {
        /// The offending inode.
        ino: Ino,
    },
    /// Directory not empty (rmdir).
    NotEmpty {
        /// The directory inode.
        ino: Ino,
    },
    /// The volume is out of free blocks.
    NoSpace,
    /// All 20 snapshot slots are in use.
    TooManySnapshots,
    /// No snapshot with this id.
    NoSuchSnapshot {
        /// The missing id.
        id: SnapId,
    },
    /// A name or attribute exceeds a format limit.
    Invalid {
        /// Human-readable reason.
        reason: String,
    },
    /// Quota exceeded for a qtree.
    QuotaExceeded {
        /// The qtree id.
        qtree: u16,
    },
    /// An error from the RAID/device layer.
    Raid(raid::RaidError),
    /// The on-disk image is unreadable or fails validation at mount.
    BadImage {
        /// Human-readable reason.
        reason: String,
    },
    /// The machine lost power mid-operation (an armed
    /// [`simkit::crash::CrashPlan`] tripped). The in-memory `Wafl` is
    /// dead: the only meaningful next call is `Wafl::crash()` to take
    /// the volume and NVRAM log into a reboot (`Wafl::mount`).
    PowerLoss {
        /// The crash point that tripped.
        point: simkit::crash::CrashPoint,
    },
}

impl std::fmt::Display for WaflError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WaflError::NotFound { what } => write!(f, "not found: {what}"),
            WaflError::Exists { name } => write!(f, "already exists: {name}"),
            WaflError::WrongType { ino } => write!(f, "wrong file type: inode {ino}"),
            WaflError::NotEmpty { ino } => write!(f, "directory not empty: inode {ino}"),
            WaflError::NoSpace => write!(f, "no space left on volume"),
            WaflError::TooManySnapshots => write!(f, "snapshot limit (20) reached"),
            WaflError::NoSuchSnapshot { id } => write!(f, "no such snapshot: {id}"),
            WaflError::Invalid { reason } => write!(f, "invalid argument: {reason}"),
            WaflError::QuotaExceeded { qtree } => write!(f, "quota exceeded on qtree {qtree}"),
            WaflError::Raid(e) => write!(f, "raid: {e}"),
            WaflError::BadImage { reason } => write!(f, "bad on-disk image: {reason}"),
            WaflError::PowerLoss { point } => write!(f, "power loss at {point}"),
        }
    }
}

impl std::error::Error for WaflError {}

impl From<raid::RaidError> for WaflError {
    fn from(e: raid::RaidError) -> Self {
        WaflError::Raid(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(WaflError::NotFound {
            what: "/a/b".into()
        }
        .to_string()
        .contains("/a/b"));
        assert!(WaflError::NoSuchSnapshot { id: 7 }
            .to_string()
            .contains('7'));
    }

    #[test]
    fn raid_errors_convert() {
        let e: WaflError = raid::RaidError::OutOfRange {
            bno: 1,
            capacity: 0,
        }
        .into();
        assert!(matches!(e, WaflError::Raid(_)));
    }
}
