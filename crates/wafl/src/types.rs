//! Core types and constants of the file system.

/// An inode number. Inode 0 is invalid, 1 is the block map file, 2 is the
/// root directory (the paper notes dump assumes "inode #2 is the root of
/// dump").
pub type Ino = u32;

/// The invalid inode number.
pub const INO_INVALID: Ino = 0;
/// The block map metadata file.
pub const INO_BLKMAP: Ino = 1;
/// The root directory.
pub const INO_ROOT: Ino = 2;
/// First inode number handed to user files.
pub const INO_FIRST_USER: Ino = 3;

/// A snapshot identifier, 1..=20 (bit plane index in the block map).
pub type SnapId = u8;

/// Maximum concurrent snapshots (paper §2.1: "WAFL allows up to 20
/// snapshots to be kept at a time").
pub const MAX_SNAPSHOTS: SnapId = 20;

/// Bytes per on-disk inode; 16 inodes per 4 KiB block.
pub const INODE_SIZE: usize = 256;
/// Inodes per inode-file block.
pub const INODES_PER_BLOCK: u64 = (crate::ondisk::BLOCK_SIZE / INODE_SIZE) as u64;

/// Direct block pointers per inode.
pub const NDIRECT: usize = 16;
/// Pointers per indirect block (4 KiB of u32).
pub const PTRS_PER_BLOCK: u64 = 1024;

/// Maximum file size in blocks (16 direct + 1024 single + 1024² double).
pub const MAX_FILE_BLOCKS: u64 = NDIRECT as u64 + PTRS_PER_BLOCK + PTRS_PER_BLOCK * PTRS_PER_BLOCK;

/// Longest stored NT ACL blob (longer ACLs are rejected).
pub const MAX_ACL: usize = 80;
/// Longest stored DOS (8.3-style) alternate name.
pub const MAX_DOS_NAME: usize = 16;
/// Longest directory entry name.
pub const MAX_NAME: usize = 255;

/// File kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileType {
    /// Regular file.
    File,
    /// Directory.
    Dir,
    /// Symbolic link (target stored as the inode's first data block, the
    /// classic non-fast-symlink layout).
    Symlink,
}

impl FileType {
    /// On-disk tag.
    pub fn to_tag(self) -> u8 {
        match self {
            FileType::File => 1,
            FileType::Dir => 2,
            FileType::Symlink => 3,
        }
    }

    /// Parses an on-disk tag; `None` for the free tag (0) or garbage.
    pub fn from_tag(tag: u8) -> Option<FileType> {
        match tag {
            1 => Some(FileType::File),
            2 => Some(FileType::Dir),
            3 => Some(FileType::Symlink),
            _ => None,
        }
    }
}

/// Standard and multiprotocol attributes carried by every inode.
///
/// The multiprotocol extras (DOS name/bits/time, NT ACL) are the attributes
/// the paper says Network Appliance's dump format was extended to carry
/// (§3) and that only physical backup preserves "for free" (§1).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Attrs {
    /// Unix permission bits.
    pub perm: u16,
    /// Owner.
    pub uid: u32,
    /// Group.
    pub gid: u32,
    /// Modification time (simulation ticks).
    pub mtime: u64,
    /// Change time.
    pub ctime: u64,
    /// Access time.
    pub atime: u64,
    /// DOS attribute bits (hidden/system/archive...).
    pub dos_attrs: u8,
    /// DOS file time.
    pub dos_time: u64,
    /// DOS alternate (8.3) name.
    pub dos_name: Option<String>,
    /// NT access control list blob.
    pub nt_acl: Option<Vec<u8>>,
}

/// Mount/format configuration.
#[derive(Debug, Clone)]
pub struct WaflConfig {
    /// NVRAM capacity in bytes (the paper's filer had 32 MB).
    pub nvram_bytes: u64,
    /// Take a consistency point automatically when NVRAM reaches half full.
    pub auto_cp_on_watermark: bool,
}

impl Default for WaflConfig {
    fn default() -> Self {
        WaflConfig {
            nvram_bytes: 32 * 1024 * 1024,
            auto_cp_on_watermark: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filetype_tags_round_trip() {
        for t in [FileType::File, FileType::Dir] {
            assert_eq!(FileType::from_tag(t.to_tag()), Some(t));
        }
        assert_eq!(FileType::from_tag(0), None);
        assert_eq!(FileType::from_tag(99), None);
    }

    #[test]
    fn layout_constants_are_consistent() {
        assert_eq!(INODES_PER_BLOCK, 16);
        assert_eq!(PTRS_PER_BLOCK * 4, crate::ondisk::BLOCK_SIZE as u64);
        // Max file is a bit over 4 GiB of 4 KiB blocks.
        const _: () = assert!(MAX_FILE_BLOCKS > 1_000_000);
    }

    #[test]
    fn well_known_inodes() {
        assert_eq!(INO_INVALID, 0);
        assert_eq!(INO_BLKMAP, 1);
        assert_eq!(INO_ROOT, 2);
        const _: () = assert!(INO_FIRST_USER > INO_ROOT);
    }
}
