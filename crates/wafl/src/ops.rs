//! File operations: the interface NFS/CIFS requests and the backup engines
//! use.
//!
//! Every mutating operation is logged to NVRAM *before* it mutates the
//! object model (so crash replay applies each op at most once), bumps the
//! logical clock, charges its modelled CPU cost, and may trigger an
//! automatic consistency point at the NVRAM half-full watermark.

use blockdev::Block;

use crate::error::WaflError;
use crate::fs::blocks_of;
use crate::fs::InodeMem;
use crate::fs::LoggedOp;
use crate::fs::Wafl;
use crate::ondisk::QtreeEntry;
use crate::ondisk::BLOCK_SIZE;
use crate::ondisk::MAX_QTREE_NAME;
use crate::types::Attrs;
use crate::types::FileType;
use crate::types::Ino;
use crate::types::INO_ROOT;
use crate::types::MAX_ACL;
use crate::types::MAX_DOS_NAME;
use crate::types::MAX_FILE_BLOCKS;
use crate::types::MAX_NAME;

/// Everything `stat` reports about an inode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stat {
    /// The inode number.
    pub ino: Ino,
    /// File kind.
    pub ftype: FileType,
    /// Size in bytes.
    pub size: u64,
    /// Allocated blocks (holes excluded).
    pub blocks: u64,
    /// Attributes including multiprotocol extras.
    pub attrs: Attrs,
    /// Link count.
    pub nlink: u16,
    /// Owning qtree (0 = none).
    pub qtree: u16,
    /// Generation number.
    pub gen: u32,
}

impl Wafl {
    fn validate_name(name: &str) -> Result<(), WaflError> {
        if name.is_empty()
            || name.len() > MAX_NAME
            || name.contains('/')
            || name == "."
            || name == ".."
        {
            return Err(WaflError::Invalid {
                reason: format!("bad name {name:?}"),
            });
        }
        Ok(())
    }

    fn validate_attrs(attrs: &Attrs) -> Result<(), WaflError> {
        if let Some(n) = &attrs.dos_name {
            if n.len() > MAX_DOS_NAME {
                return Err(WaflError::Invalid {
                    reason: "dos name too long".into(),
                });
            }
        }
        if let Some(a) = &attrs.nt_acl {
            if a.len() > MAX_ACL {
                return Err(WaflError::Invalid {
                    reason: "acl too long".into(),
                });
            }
        }
        Ok(())
    }

    pub(crate) fn inode(&self, ino: Ino) -> Result<&InodeMem, WaflError> {
        self.inodes
            .get(ino as usize)
            .and_then(|s| s.as_ref())
            .ok_or(WaflError::NotFound {
                what: format!("inode {ino}"),
            })
    }

    pub(crate) fn inode_mut(&mut self, ino: Ino) -> Result<&mut InodeMem, WaflError> {
        self.inodes
            .get_mut(ino as usize)
            .and_then(|s| s.as_mut())
            .ok_or(WaflError::NotFound {
                what: format!("inode {ino}"),
            })
    }

    /// Whether an inode number is currently allocated.
    pub fn inode_exists(&self, ino: Ino) -> bool {
        self.inodes
            .get(ino as usize)
            .map(|s| s.is_some())
            .unwrap_or(false)
    }

    /// One past the largest inode number ever allocated.
    pub fn max_ino(&self) -> Ino {
        self.next_ino
    }

    /// Creates a file or directory under `parent`.
    pub fn create(
        &mut self,
        parent: Ino,
        name: &str,
        ftype: FileType,
        attrs: Attrs,
    ) -> Result<Ino, WaflError> {
        Self::validate_name(name)?;
        Self::validate_attrs(&attrs)?;
        let parent_qtree = {
            let p = self.inode(parent)?;
            if p.ftype != FileType::Dir {
                return Err(WaflError::WrongType { ino: parent });
            }
            if p.dir_ref()?.contains_key(name) {
                return Err(WaflError::Exists { name: name.into() });
            }
            p.qtree
        };
        self.log_op(LoggedOp::Create {
            parent,
            name: name.into(),
            ftype,
            attrs: attrs.clone(),
        })?;
        let tick = self.bump_tick();
        self.meter.charge_cpu(self.costs.inode_op);

        let ino = self.next_ino;
        self.next_ino += 1;
        let gen = self.next_gen;
        self.next_gen += 1;
        let mut attrs = attrs;
        attrs.ctime = tick;
        attrs.mtime = tick;
        attrs.atime = tick;
        let inode = match ftype {
            FileType::File | FileType::Symlink => {
                InodeMem::new_leaf(ftype, attrs, parent_qtree, gen)
            }
            FileType::Dir => InodeMem::new_dir(attrs, parent_qtree, gen),
        };
        if self.inodes.len() <= ino as usize {
            self.inodes.resize(ino as usize + 1, None);
        }
        self.inodes[ino as usize] = Some(inode);
        {
            let p = self.inode_mut(parent)?;
            p.dir_mut()?.insert(name.into(), ino);
            p.dir_dirty = true;
            p.attrs.mtime = tick;
            if ftype == FileType::Dir {
                p.nlink += 1;
            }
        }
        self.dirty_inodes.insert(ino);
        self.dirty_inodes.insert(parent);
        if parent_qtree != 0 {
            if let Some(q) = self.qtrees.iter_mut().find(|q| q.id == parent_qtree) {
                q.files_used += 1;
            }
        }
        self.maybe_auto_cp()?;
        Ok(ino)
    }

    /// Removes a name. The inode (and its blocks) go only when its last
    /// link goes; directories must be empty.
    pub fn remove(&mut self, parent: Ino, name: &str) -> Result<(), WaflError> {
        let ino = self.lookup(parent, name)?;
        let (ftype, qtree, freed_blocks, nlink) = {
            let inode = self.inode(ino)?;
            if inode.ftype == FileType::Dir && !inode.dir_ref()?.is_empty() {
                return Err(WaflError::NotEmpty { ino });
            }
            let freed = inode.tree.slots.iter().filter(|&&b| b != 0).count() as u64;
            (inode.ftype, inode.qtree, freed, inode.nlink)
        };
        self.log_op(LoggedOp::Remove {
            parent,
            name: name.into(),
        })?;
        let tick = self.bump_tick();
        self.meter.charge_cpu(self.costs.inode_op);

        if ftype != FileType::Dir && nlink > 1 {
            // Another name still references the inode: drop this entry only.
            self.inode_mut(ino)?.nlink = nlink - 1;
            {
                let p = self.inode_mut(parent)?;
                p.dir_mut()?.remove(name);
                p.dir_dirty = true;
                p.attrs.mtime = tick;
            }
            self.dirty_inodes.insert(ino);
            self.dirty_inodes.insert(parent);
            self.maybe_auto_cp()?;
            return Ok(());
        }

        let slots = self.inode(ino)?.tree.slots.clone();
        for bno in slots {
            if bno != 0 {
                self.free_block(bno as u64);
            }
        }
        // Indirect blocks of the removed file go too.
        let meta = self.inode(ino)?.meta.clone();
        for home in meta.l1_homes {
            if home != 0 {
                self.free_block(home as u64);
            }
        }
        if meta.dind_home != 0 {
            self.free_block(meta.dind_home as u64);
        }
        self.inodes[ino as usize] = None;
        self.dirty_inodes.insert(ino);
        {
            let p = self.inode_mut(parent)?;
            p.dir_mut()?.remove(name);
            p.dir_dirty = true;
            p.attrs.mtime = tick;
            if ftype == FileType::Dir {
                p.nlink -= 1;
            }
        }
        self.dirty_inodes.insert(parent);
        if qtree != 0 {
            if let Some(q) = self.qtrees.iter_mut().find(|q| q.id == qtree) {
                q.files_used = q.files_used.saturating_sub(1);
                q.bytes_used = q
                    .bytes_used
                    .saturating_sub(freed_blocks * BLOCK_SIZE as u64);
            }
        }
        self.maybe_auto_cp()?;
        Ok(())
    }

    /// Renames `from_parent/from_name` to `to_parent/to_name`.
    ///
    /// The destination must not exist (restores never replace, and keeping
    /// the semantics strict makes incremental-dump move detection
    /// unambiguous).
    pub fn rename(
        &mut self,
        from_parent: Ino,
        from_name: &str,
        to_parent: Ino,
        to_name: &str,
    ) -> Result<(), WaflError> {
        Self::validate_name(to_name)?;
        let ino = self.lookup(from_parent, from_name)?;
        {
            let t = self.inode(to_parent)?;
            if t.ftype != FileType::Dir {
                return Err(WaflError::WrongType { ino: to_parent });
            }
            if t.dir_ref()?.contains_key(to_name) {
                return Err(WaflError::Exists {
                    name: to_name.into(),
                });
            }
        }
        // Moving a directory into itself or its own subtree would detach a
        // cycle from the tree (classic EINVAL).
        if self.inode(ino)?.ftype == FileType::Dir {
            let mut probe = to_parent;
            loop {
                if probe == ino {
                    return Err(WaflError::Invalid {
                        reason: "cannot move a directory under itself".into(),
                    });
                }
                // Walk up via a reverse scan: find probe's parent.
                let parent = self
                    .inodes
                    .iter()
                    .enumerate()
                    .filter_map(|(i, slot)| slot.as_ref().map(|inode| (i as Ino, inode)))
                    .find(|(_, inode)| {
                        inode.ftype == FileType::Dir
                            && inode
                                .dir
                                .as_ref()
                                .map(|d| d.values().any(|&c| c == probe))
                                .unwrap_or(false)
                    })
                    .map(|(i, _)| i);
                match parent {
                    Some(p) if p != probe => probe = p,
                    _ => break,
                }
            }
        }
        self.log_op(LoggedOp::Rename {
            from_parent,
            from_name: from_name.into(),
            to_parent,
            to_name: to_name.into(),
        })?;
        let tick = self.bump_tick();
        self.meter.charge_cpu(self.costs.inode_op);

        let ftype = self.inode(ino)?.ftype;
        {
            let f = self.inode_mut(from_parent)?;
            f.dir_mut()?.remove(from_name);
            f.dir_dirty = true;
            f.attrs.mtime = tick;
            if ftype == FileType::Dir {
                f.nlink -= 1;
            }
        }
        {
            let t = self.inode_mut(to_parent)?;
            t.dir_mut()?.insert(to_name.into(), ino);
            t.dir_dirty = true;
            t.attrs.mtime = tick;
            if ftype == FileType::Dir {
                t.nlink += 1;
            }
        }
        {
            let i = self.inode_mut(ino)?;
            i.attrs.ctime = tick;
        }
        self.dirty_inodes.insert(from_parent);
        self.dirty_inodes.insert(to_parent);
        self.dirty_inodes.insert(ino);
        self.maybe_auto_cp()?;
        Ok(())
    }

    /// Writes one 4 KiB block of a file (write-anywhere: always to a fresh
    /// location).
    pub fn write_fbn(&mut self, ino: Ino, fbn: u64, block: Block) -> Result<(), WaflError> {
        if fbn >= MAX_FILE_BLOCKS {
            return Err(WaflError::Invalid {
                reason: format!("fbn {fbn} beyond maximum file size"),
            });
        }
        let (qtree, is_new_block) = {
            let inode = self.inode(ino)?;
            if inode.ftype == FileType::Dir {
                return Err(WaflError::WrongType { ino });
            }
            (inode.qtree, inode.tree.get(fbn) == 0)
        };
        if is_new_block && qtree != 0 {
            if let Some(q) = self.qtrees.iter().find(|q| q.id == qtree) {
                if q.limit_bytes != 0 && q.bytes_used + BLOCK_SIZE as u64 > q.limit_bytes {
                    return Err(WaflError::QuotaExceeded { qtree });
                }
            }
        }
        self.log_op(LoggedOp::Write {
            ino,
            fbn,
            block: block.clone(),
        })?;
        let tick = self.bump_tick();
        self.meter.charge_cpu(self.costs.fs_write_block);

        let bno = self.alloc_block()?;
        self.vol.write_block(bno, block)?;
        {
            let inode = self.inode_mut(ino)?;
            let old = inode.tree.get(fbn);
            inode.tree.set(fbn, bno as u32);
            inode.dirty_fbns.insert(fbn);
            inode.size = inode.size.max((fbn + 1) * BLOCK_SIZE as u64);
            inode.attrs.mtime = tick;
            if old != 0 {
                self.free_block(old as u64);
            }
        }
        self.dirty_inodes.insert(ino);
        if is_new_block && qtree != 0 {
            if let Some(q) = self.qtrees.iter_mut().find(|q| q.id == qtree) {
                q.bytes_used += BLOCK_SIZE as u64;
            }
        }
        self.maybe_auto_cp()?;
        Ok(())
    }

    /// Reads one 4 KiB block of a file; holes read as zero.
    pub fn read_fbn(&mut self, ino: Ino, fbn: u64) -> Result<Block, WaflError> {
        self.meter.charge_cpu(self.costs.fs_read_block);
        let bno = {
            let inode = self.inode(ino)?;
            if inode.ftype == FileType::Dir {
                return Err(WaflError::WrongType { ino });
            }
            inode.tree.get(fbn)
        };
        if bno == 0 {
            Ok(Block::Zero)
        } else {
            Ok(self.vol.read_block(bno as u64)?)
        }
    }

    /// Sets the byte size exactly, truncating blocks past the end or
    /// extending with a trailing hole.
    pub fn set_size(&mut self, ino: Ino, size: u64) -> Result<(), WaflError> {
        {
            let inode = self.inode(ino)?;
            if inode.ftype == FileType::Dir {
                return Err(WaflError::WrongType { ino });
            }
        }
        self.log_op(LoggedOp::SetSize { ino, size })?;
        let tick = self.bump_tick();
        self.meter.charge_cpu(self.costs.inode_op);

        let keep = blocks_of(size);
        let (freed, qtree) = {
            let inode = self.inode_mut(ino)?;
            let mut freed = Vec::new();
            if (keep as usize) < inode.tree.slots.len() {
                for &bno in &inode.tree.slots[keep as usize..] {
                    if bno != 0 {
                        freed.push(bno as u64);
                    }
                }
                for fbn in keep..inode.tree.nslots() {
                    inode.dirty_fbns.insert(fbn);
                }
                inode.tree.slots.truncate(keep as usize);
            }
            inode.size = size;
            inode.attrs.mtime = tick;
            (freed, inode.qtree)
        };
        let nfreed = freed.len() as u64;
        for bno in freed {
            self.free_block(bno);
        }
        if qtree != 0 && nfreed > 0 {
            if let Some(q) = self.qtrees.iter_mut().find(|q| q.id == qtree) {
                q.bytes_used = q.bytes_used.saturating_sub(nfreed * BLOCK_SIZE as u64);
            }
        }
        self.dirty_inodes.insert(ino);
        self.maybe_auto_cp()?;
        Ok(())
    }

    /// Replaces an inode's attributes (including multiprotocol extras).
    pub fn set_attrs(&mut self, ino: Ino, attrs: Attrs) -> Result<(), WaflError> {
        Self::validate_attrs(&attrs)?;
        self.inode(ino)?;
        self.log_op(LoggedOp::SetAttrs {
            ino,
            attrs: attrs.clone(),
        })?;
        self.bump_tick();
        self.meter.charge_cpu(self.costs.inode_op);
        self.inode_mut(ino)?.attrs = attrs;
        self.dirty_inodes.insert(ino);
        self.maybe_auto_cp()?;
        Ok(())
    }

    /// Looks one name up in a directory.
    pub fn lookup(&self, parent: Ino, name: &str) -> Result<Ino, WaflError> {
        self.meter.charge_cpu(self.costs.lookup_component);
        let p = self.inode(parent)?;
        if p.ftype != FileType::Dir {
            return Err(WaflError::WrongType { ino: parent });
        }
        p.dir_ref()?
            .get(name)
            .copied()
            .ok_or_else(|| WaflError::NotFound {
                what: format!("{name:?} in inode {parent}"),
            })
    }

    /// Resolves a slash-separated path from the root.
    pub fn namei(&self, path: &str) -> Result<Ino, WaflError> {
        let mut ino = INO_ROOT;
        for comp in path.split('/').filter(|c| !c.is_empty()) {
            ino = self.lookup(ino, comp)?;
        }
        Ok(ino)
    }

    /// Lists a directory (sorted by name).
    pub fn readdir(&self, ino: Ino) -> Result<Vec<(String, Ino)>, WaflError> {
        let inode = self.inode(ino)?;
        if inode.ftype != FileType::Dir {
            return Err(WaflError::WrongType { ino });
        }
        Ok(inode
            .dir_ref()?
            .iter()
            .map(|(n, i)| (n.clone(), *i))
            .collect())
    }

    /// Stats an inode.
    pub fn stat(&self, ino: Ino) -> Result<Stat, WaflError> {
        let inode = self.inode(ino)?;
        Ok(Stat {
            ino,
            ftype: inode.ftype,
            size: inode.size,
            blocks: inode.tree.slots.iter().filter(|&&b| b != 0).count() as u64,
            attrs: inode.attrs.clone(),
            nlink: inode.nlink,
            qtree: inode.qtree,
            gen: inode.gen,
        })
    }

    /// Creates a symbolic link holding `target` (stored as the link's
    /// first data block, like a classic non-fast symlink).
    pub fn create_symlink(
        &mut self,
        parent: Ino,
        name: &str,
        target: &str,
        attrs: Attrs,
    ) -> Result<Ino, WaflError> {
        if target.len() >= crate::ondisk::BLOCK_SIZE {
            return Err(WaflError::Invalid {
                reason: "symlink target too long".into(),
            });
        }
        self.log_op(LoggedOp::Symlink {
            parent,
            name: name.into(),
            target: target.into(),
            attrs: attrs.clone(),
        })?;
        // The inner ops must not double-log.
        let was_replaying = self.replaying;
        self.replaying = true;
        let result: Result<Ino, WaflError> = (|| {
            let ino = self.create(parent, name, FileType::Symlink, attrs)?;
            if !target.is_empty() {
                self.write_fbn(ino, 0, Block::from_bytes(target.as_bytes()))?;
                self.set_size(ino, target.len() as u64)?;
            }
            Ok(ino)
        })();
        self.replaying = was_replaying;
        let ino = result?;
        self.maybe_auto_cp()?;
        Ok(ino)
    }

    /// Reads a symlink's target.
    pub fn readlink(&mut self, ino: Ino) -> Result<String, WaflError> {
        let size = {
            let inode = self.inode(ino)?;
            if inode.ftype != FileType::Symlink {
                return Err(WaflError::WrongType { ino });
            }
            inode.size as usize
        };
        if size == 0 {
            return Ok(String::new());
        }
        let block = self.read_fbn(ino, 0)?;
        let bytes = block.materialize();
        Ok(String::from_utf8_lossy(&bytes[..size.min(bytes.len())]).into_owned())
    }

    /// Adds a hard link: `parent/name` becomes another name for `ino`.
    ///
    /// Directories cannot be hard-linked, and (as on the real filer) links
    /// may not cross qtree boundaries.
    pub fn link(&mut self, parent: Ino, name: &str, ino: Ino) -> Result<(), WaflError> {
        Self::validate_name(name)?;
        {
            let target = self.inode(ino)?;
            if target.ftype == FileType::Dir {
                return Err(WaflError::WrongType { ino });
            }
            let p = self.inode(parent)?;
            if p.ftype != FileType::Dir {
                return Err(WaflError::WrongType { ino: parent });
            }
            if p.dir_ref()?.contains_key(name) {
                return Err(WaflError::Exists { name: name.into() });
            }
            if p.qtree != target.qtree {
                return Err(WaflError::Invalid {
                    reason: "hard links cannot cross qtrees".into(),
                });
            }
        }
        self.log_op(LoggedOp::Link {
            parent,
            name: name.into(),
            ino,
        })?;
        let tick = self.bump_tick();
        self.meter.charge_cpu(self.costs.inode_op);
        {
            let target = self.inode_mut(ino)?;
            target.nlink += 1;
            target.attrs.ctime = tick;
        }
        {
            let p = self.inode_mut(parent)?;
            p.dir_mut()?.insert(name.into(), ino);
            p.dir_dirty = true;
            p.attrs.mtime = tick;
        }
        self.dirty_inodes.insert(ino);
        self.dirty_inodes.insert(parent);
        self.maybe_auto_cp()?;
        Ok(())
    }

    /// Creates a qtree: a top-level directory that carries its own quota
    /// accounting (the construct the paper used to split `home` into four
    /// pieces for parallel logical dumps).
    pub fn create_qtree(&mut self, name: &str, limit_bytes: u64) -> Result<u16, WaflError> {
        Self::validate_name(name)?;
        if name.len() > MAX_QTREE_NAME {
            return Err(WaflError::Invalid {
                reason: "qtree name too long".into(),
            });
        }
        if self.qtrees.len() >= 64 {
            return Err(WaflError::Invalid {
                reason: "too many qtrees".into(),
            });
        }
        self.log_op(LoggedOp::CreateQtree {
            name: name.into(),
            limit_bytes,
        })?;
        // The directory itself (not logged again: create() skips logging
        // during replay anyway, and here we synthesize it directly).
        let was_replaying = self.replaying;
        self.replaying = true;
        let root_ino = self.create(INO_ROOT, name, FileType::Dir, Attrs::default());
        self.replaying = was_replaying;
        let root_ino = root_ino?;
        let id = self.next_qtree;
        self.next_qtree += 1;
        self.inode_mut(root_ino)?.qtree = id;
        self.qtrees.push(QtreeEntry {
            id,
            root_ino,
            name: name.into(),
            bytes_used: 0,
            files_used: 0,
            limit_bytes,
        });
        self.maybe_auto_cp()?;
        Ok(id)
    }

    /// A file's block mapping (fbn → volume block, 0 = hole) — exposed for
    /// layout tools such as the fragmentation gauge in the workload crate.
    pub fn file_extents(&self, ino: Ino) -> Result<Vec<u32>, WaflError> {
        let inode = self.inode(ino)?;
        if inode.ftype != FileType::File {
            return Err(WaflError::WrongType { ino });
        }
        Ok(inode.tree.slots.clone())
    }

    /// Like [`Wafl::file_extents`] but for any inode kind (directories'
    /// entry blocks included) — used by the consistency checker.
    pub fn file_extents_any(&self, ino: Ino) -> Result<Vec<u32>, WaflError> {
        Ok(self.inode(ino)?.tree.slots.clone())
    }

    /// The on-disk homes of an inode's indirect blocks (L1s and the
    /// double-indirect block) — used by the consistency checker.
    pub fn indirect_homes(&self, ino: Ino) -> Result<Vec<u32>, WaflError> {
        let inode = self.inode(ino)?;
        let mut homes: Vec<u32> = inode
            .meta
            .l1_homes
            .iter()
            .copied()
            .filter(|&b| b != 0)
            .collect();
        if inode.meta.dind_home != 0 {
            homes.push(inode.meta.dind_home);
        }
        Ok(homes)
    }

    /// The inode file's layout: `(block homes, indirect homes)` — used by
    /// the consistency checker.
    pub fn inofile_layout(&self) -> (Vec<u32>, Vec<u32>) {
        let mut meta: Vec<u32> = self
            .inofile_meta
            .l1_homes
            .iter()
            .copied()
            .filter(|&b| b != 0)
            .collect();
        if self.inofile_meta.dind_home != 0 {
            meta.push(self.inofile_meta.dind_home);
        }
        (
            self.inofile_tree
                .slots
                .iter()
                .copied()
                .filter(|&b| b != 0)
                .collect(),
            meta,
        )
    }

    /// The block-map file's layout: `(block homes, indirect homes)`.
    pub fn blkmap_layout(&self) -> (Vec<u32>, Vec<u32>) {
        let mut meta: Vec<u32> = self
            .blkmap_meta
            .l1_homes
            .iter()
            .copied()
            .filter(|&b| b != 0)
            .collect();
        if self.blkmap_meta.dind_home != 0 {
            meta.push(self.blkmap_meta.dind_home);
        }
        (
            self.blkmap_tree
                .slots
                .iter()
                .copied()
                .filter(|&b| b != 0)
                .collect(),
            meta,
        )
    }

    /// Block holding the snapshot table (0 before the first CP).
    pub fn snaptable_bno(&self) -> u32 {
        self.snaptable_bno
    }

    /// Block holding the qtree table (0 before the first CP).
    pub fn qtree_table_bno(&self) -> u32 {
        self.qtree_bno
    }

    /// The qtree table.
    pub fn qtrees(&self) -> &[QtreeEntry] {
        &self.qtrees
    }

    /// Usage of one qtree: `(bytes, files)`.
    pub fn qtree_usage(&self, id: u16) -> Option<(u64, u64)> {
        self.qtrees
            .iter()
            .find(|q| q.id == id)
            .map(|q| (q.bytes_used, q.files_used))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::WaflConfig;
    use blockdev::DiskPerf;
    use raid::Volume;
    use raid::VolumeGeometry;

    fn fs() -> Wafl {
        let vol = Volume::new(VolumeGeometry::uniform(1, 4, 2048, DiskPerf::ideal()));
        Wafl::format(vol, WaflConfig::default()).unwrap()
    }

    #[test]
    fn create_write_read_round_trip() {
        let mut fs = fs();
        let f = fs
            .create(INO_ROOT, "hello.txt", FileType::File, Attrs::default())
            .unwrap();
        fs.write_fbn(f, 0, Block::Synthetic(1)).unwrap();
        fs.write_fbn(f, 1, Block::Synthetic(2)).unwrap();
        assert!(fs
            .read_fbn(f, 0)
            .unwrap()
            .same_content(&Block::Synthetic(1)));
        assert!(fs
            .read_fbn(f, 1)
            .unwrap()
            .same_content(&Block::Synthetic(2)));
        assert_eq!(fs.stat(f).unwrap().size, 8192);
        assert_eq!(fs.stat(f).unwrap().blocks, 2);
    }

    #[test]
    fn holes_read_as_zero() {
        let mut fs = fs();
        let f = fs
            .create(INO_ROOT, "sparse", FileType::File, Attrs::default())
            .unwrap();
        fs.write_fbn(f, 5, Block::Synthetic(9)).unwrap();
        assert!(fs.read_fbn(f, 0).unwrap().same_content(&Block::Zero));
        assert!(fs.read_fbn(f, 4).unwrap().same_content(&Block::Zero));
        assert!(fs
            .read_fbn(f, 5)
            .unwrap()
            .same_content(&Block::Synthetic(9)));
        assert_eq!(fs.stat(f).unwrap().size, 6 * 4096);
        assert_eq!(fs.stat(f).unwrap().blocks, 1);
    }

    #[test]
    fn create_rejects_duplicates_and_bad_names() {
        let mut fs = fs();
        fs.create(INO_ROOT, "a", FileType::File, Attrs::default())
            .unwrap();
        assert!(matches!(
            fs.create(INO_ROOT, "a", FileType::File, Attrs::default()),
            Err(WaflError::Exists { .. })
        ));
        for bad in ["", ".", "..", "x/y"] {
            assert!(matches!(
                fs.create(INO_ROOT, bad, FileType::File, Attrs::default()),
                Err(WaflError::Invalid { .. })
            ));
        }
    }

    #[test]
    fn namei_walks_paths() {
        let mut fs = fs();
        let d1 = fs
            .create(INO_ROOT, "usr", FileType::Dir, Attrs::default())
            .unwrap();
        let d2 = fs
            .create(d1, "local", FileType::Dir, Attrs::default())
            .unwrap();
        let f = fs
            .create(d2, "bin", FileType::File, Attrs::default())
            .unwrap();
        assert_eq!(fs.namei("/usr/local/bin").unwrap(), f);
        assert_eq!(fs.namei("usr/local").unwrap(), d2);
        assert_eq!(fs.namei("/").unwrap(), INO_ROOT);
        assert!(fs.namei("/usr/missing").is_err());
    }

    #[test]
    fn remove_file_frees_space() {
        let mut fs = fs();
        let before = fs.free_blocks();
        let f = fs
            .create(INO_ROOT, "f", FileType::File, Attrs::default())
            .unwrap();
        for i in 0..20 {
            fs.write_fbn(f, i, Block::Synthetic(i)).unwrap();
        }
        fs.remove(INO_ROOT, "f").unwrap();
        fs.cp().unwrap();
        // All data + indirect blocks come back (metadata block homes moved,
        // so allow a little slack rather than exact equality).
        let after = fs.free_blocks();
        assert!(after + 8 >= before, "before={before} after={after}");
        assert!(!fs.inode_exists(f));
    }

    #[test]
    fn rmdir_requires_empty() {
        let mut fs = fs();
        let d = fs
            .create(INO_ROOT, "d", FileType::Dir, Attrs::default())
            .unwrap();
        fs.create(d, "child", FileType::File, Attrs::default())
            .unwrap();
        assert!(matches!(
            fs.remove(INO_ROOT, "d"),
            Err(WaflError::NotEmpty { .. })
        ));
        fs.remove(d, "child").unwrap();
        fs.remove(INO_ROOT, "d").unwrap();
        assert!(fs.namei("/d").is_err());
    }

    #[test]
    fn rename_moves_entries() {
        let mut fs = fs();
        let d = fs
            .create(INO_ROOT, "dir", FileType::Dir, Attrs::default())
            .unwrap();
        let f = fs
            .create(INO_ROOT, "old", FileType::File, Attrs::default())
            .unwrap();
        fs.rename(INO_ROOT, "old", d, "new").unwrap();
        assert!(fs.namei("/old").is_err());
        assert_eq!(fs.namei("/dir/new").unwrap(), f);
        // Destination collisions are refused.
        fs.create(INO_ROOT, "other", FileType::File, Attrs::default())
            .unwrap();
        assert!(matches!(
            fs.rename(d, "new", INO_ROOT, "other"),
            Err(WaflError::Exists { .. })
        ));
    }

    #[test]
    fn rename_refuses_directory_cycles() {
        let mut fs = fs();
        let a = fs
            .create(INO_ROOT, "a", FileType::Dir, Attrs::default())
            .unwrap();
        let b = fs.create(a, "b", FileType::Dir, Attrs::default()).unwrap();
        let c = fs.create(b, "c", FileType::Dir, Attrs::default()).unwrap();
        // a -> a/b/c would orphan a cycle.
        assert!(matches!(
            fs.rename(INO_ROOT, "a", c, "looped"),
            Err(WaflError::Invalid { .. })
        ));
        // a -> a is equally refused.
        assert!(matches!(
            fs.rename(INO_ROOT, "a", a, "self"),
            Err(WaflError::Invalid { .. })
        ));
        // Sideways moves of directories still work.
        let d = fs
            .create(INO_ROOT, "d", FileType::Dir, Attrs::default())
            .unwrap();
        fs.rename(a, "b", d, "b-moved").unwrap();
        assert!(fs.namei("/d/b-moved/c").is_ok());
    }

    #[test]
    fn set_size_truncates_and_extends() {
        let mut fs = fs();
        let f = fs
            .create(INO_ROOT, "f", FileType::File, Attrs::default())
            .unwrap();
        for i in 0..10 {
            fs.write_fbn(f, i, Block::Synthetic(i)).unwrap();
        }
        fs.set_size(f, 3 * 4096).unwrap();
        assert_eq!(fs.stat(f).unwrap().size, 3 * 4096);
        assert_eq!(fs.stat(f).unwrap().blocks, 3);
        assert!(fs.read_fbn(f, 5).unwrap().same_content(&Block::Zero));
        // Extension adds a trailing hole.
        fs.set_size(f, 100 * 4096).unwrap();
        assert_eq!(fs.stat(f).unwrap().blocks, 3);
        assert!(fs.read_fbn(f, 50).unwrap().same_content(&Block::Zero));
    }

    #[test]
    fn attrs_round_trip_including_multiprotocol() {
        let mut fs = fs();
        let f = fs
            .create(INO_ROOT, "f", FileType::File, Attrs::default())
            .unwrap();
        let attrs = Attrs {
            perm: 0o600,
            uid: 42,
            gid: 43,
            dos_attrs: 0x07,
            dos_time: 12345,
            dos_name: Some("LEGACY~1.TXT".into()),
            nt_acl: Some(vec![0xde, 0xad]),
            ..Attrs::default()
        };
        fs.set_attrs(f, attrs.clone()).unwrap();
        let got = fs.stat(f).unwrap().attrs;
        assert_eq!(got.dos_name, attrs.dos_name);
        assert_eq!(got.nt_acl, attrs.nt_acl);
        assert_eq!(got.perm, 0o600);
        // Oversized extras are rejected.
        assert!(fs
            .set_attrs(
                f,
                Attrs {
                    nt_acl: Some(vec![0; 200]),
                    ..Attrs::default()
                }
            )
            .is_err());
    }

    #[test]
    fn qtree_accounting_tracks_usage() {
        let mut fs = fs();
        let q = fs.create_qtree("eng", 0).unwrap();
        let qroot = fs.namei("/eng").unwrap();
        let f = fs
            .create(qroot, "data", FileType::File, Attrs::default())
            .unwrap();
        for i in 0..4 {
            fs.write_fbn(f, i, Block::Synthetic(i)).unwrap();
        }
        assert_eq!(fs.qtree_usage(q), Some((4 * 4096, 1)));
        fs.remove(qroot, "data").unwrap();
        assert_eq!(fs.qtree_usage(q), Some((0, 0)));
    }

    #[test]
    fn qtree_quota_is_enforced() {
        let mut fs = fs();
        let _q = fs.create_qtree("small", 2 * 4096).unwrap();
        let qroot = fs.namei("/small").unwrap();
        let f = fs
            .create(qroot, "f", FileType::File, Attrs::default())
            .unwrap();
        fs.write_fbn(f, 0, Block::Synthetic(1)).unwrap();
        fs.write_fbn(f, 1, Block::Synthetic(2)).unwrap();
        assert!(matches!(
            fs.write_fbn(f, 2, Block::Synthetic(3)),
            Err(WaflError::QuotaExceeded { .. })
        ));
        // Overwriting an existing block is fine (no new allocation charge).
        fs.write_fbn(f, 0, Block::Synthetic(9)).unwrap();
    }

    #[test]
    fn readdir_is_sorted_and_typed() {
        let mut fs = fs();
        fs.create(INO_ROOT, "zeta", FileType::File, Attrs::default())
            .unwrap();
        fs.create(INO_ROOT, "alpha", FileType::Dir, Attrs::default())
            .unwrap();
        let names: Vec<String> = fs
            .readdir(INO_ROOT)
            .unwrap()
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
        let f = fs.namei("/zeta").unwrap();
        assert!(matches!(fs.readdir(f), Err(WaflError::WrongType { .. })));
    }

    #[test]
    fn writes_update_mtime_monotonically() {
        let mut fs = fs();
        let f = fs
            .create(INO_ROOT, "f", FileType::File, Attrs::default())
            .unwrap();
        let t0 = fs.stat(f).unwrap().attrs.mtime;
        fs.write_fbn(f, 0, Block::Synthetic(1)).unwrap();
        let t1 = fs.stat(f).unwrap().attrs.mtime;
        assert!(t1 > t0);
    }

    #[test]
    fn fbn_out_of_range_is_rejected() {
        let mut fs = fs();
        let f = fs
            .create(INO_ROOT, "f", FileType::File, Attrs::default())
            .unwrap();
        assert!(matches!(
            fs.write_fbn(f, MAX_FILE_BLOCKS, Block::Zero),
            Err(WaflError::Invalid { .. })
        ));
    }
}
