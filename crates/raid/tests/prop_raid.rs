//! Property tests: a RAID-4 group must behave exactly like a plain array
//! of blocks under any schedule of writes, single-member failures,
//! reconstructions and scrubs.

use blockdev::Block;
use blockdev::DiskPerf;
use proptest::prelude::*;
use raid::Raid4Group;

#[derive(Debug, Clone)]
enum Op {
    Write { bno: u16, seed: u64 },
    FailDisk { member: u8 },
    Reconstruct,
    Scrub,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (any::<u16>(), any::<u64>()).prop_map(|(bno, seed)| Op::Write { bno, seed }),
        1 => any::<u8>().prop_map(|member| Op::FailDisk { member }),
        2 => Just(Op::Reconstruct),
        1 => Just(Op::Scrub),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn raid_mirrors_a_plain_block_array(ops in proptest::collection::vec(arb_op(), 1..80)) {
        let ndata = 4usize;
        let blocks_per_disk = 32u64;
        let capacity = ndata as u64 * blocks_per_disk;
        let mut group = Raid4Group::new(ndata, blocks_per_disk, DiskPerf::ideal());
        let mut model: Vec<Block> = vec![Block::Zero; capacity as usize];
        let mut failed: Option<usize> = None;

        for op in ops {
            match op {
                Op::Write { bno, seed } => {
                    let bno = bno as u64 % capacity;
                    group.write(bno, Block::Synthetic(seed)).unwrap();
                    model[bno as usize] = Block::Synthetic(seed);
                }
                Op::FailDisk { member } => {
                    // At most one failure outstanding (RAID-4's contract).
                    if failed.is_none() {
                        let member = member as usize % (ndata + 1);
                        group.fail_disk(member).unwrap();
                        failed = Some(member);
                    }
                }
                Op::Reconstruct => {
                    group.reconstruct().unwrap();
                    failed = None;
                }
                Op::Scrub => {
                    if failed.is_none() {
                        prop_assert_eq!(group.scrub().unwrap(), 0);
                    }
                }
            }
            // Reads must match the model at all times — healthy or
            // degraded.
            for probe in [0u64, capacity / 2, capacity - 1] {
                let got = group.read(probe).unwrap();
                prop_assert!(
                    got.same_content(&model[probe as usize]),
                    "bno {probe} diverged (failed member: {failed:?})"
                );
            }
        }

        // Final full sweep after repairing any outstanding failure.
        group.reconstruct().unwrap();
        prop_assert_eq!(group.scrub().unwrap(), 0);
        for bno in 0..capacity {
            prop_assert!(group.read(bno).unwrap().same_content(&model[bno as usize]));
        }
    }
}
