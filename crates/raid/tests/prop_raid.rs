//! Randomized tests: a RAID-4 group must behave exactly like a plain array
//! of blocks under any schedule of writes, single-member failures,
//! reconstructions and scrubs. Schedules come from a deterministic seeded
//! generator.

use blockdev::Block;
use blockdev::DiskPerf;
use raid::Raid4Group;
use simkit::rng::SimRng;

#[derive(Debug, Clone)]
enum Op {
    Write { bno: u16, seed: u64 },
    FailDisk { member: u8 },
    Reconstruct,
    Scrub,
}

/// Weighted draw matching the old proptest strategy (4:1:2:1).
fn arb_op(rng: &mut SimRng) -> Op {
    match rng.range(0, 8) {
        0..=3 => Op::Write {
            bno: rng.next_u64() as u16,
            seed: rng.next_u64(),
        },
        4 => Op::FailDisk {
            member: rng.next_u64() as u8,
        },
        5 | 6 => Op::Reconstruct,
        _ => Op::Scrub,
    }
}

#[test]
fn raid_mirrors_a_plain_block_array() {
    let mut rng = SimRng::seed_from_u64(0x4a1d_0001);
    for case in 0..64 {
        let ndata = 4usize;
        let blocks_per_disk = 32u64;
        let capacity = ndata as u64 * blocks_per_disk;
        let mut group = Raid4Group::new(ndata, blocks_per_disk, DiskPerf::ideal());
        let mut model: Vec<Block> = vec![Block::Zero; capacity as usize];
        let mut failed: Option<usize> = None;

        let nops = rng.range(1, 80);
        for _ in 0..nops {
            match arb_op(&mut rng) {
                Op::Write { bno, seed } => {
                    let bno = bno as u64 % capacity;
                    group.write(bno, Block::Synthetic(seed)).unwrap();
                    model[bno as usize] = Block::Synthetic(seed);
                }
                Op::FailDisk { member } => {
                    // At most one failure outstanding (RAID-4's contract).
                    if failed.is_none() {
                        let member = member as usize % (ndata + 1);
                        group.fail_disk(member).unwrap();
                        failed = Some(member);
                    }
                }
                Op::Reconstruct => {
                    group.reconstruct().unwrap();
                    failed = None;
                }
                Op::Scrub => {
                    if failed.is_none() {
                        assert_eq!(group.scrub().unwrap(), 0, "case {case}");
                    }
                }
            }
            // Reads must match the model at all times — healthy or
            // degraded.
            for probe in [0u64, capacity / 2, capacity - 1] {
                let got = group.read(probe).unwrap();
                assert!(
                    got.same_content(&model[probe as usize]),
                    "case {case}: bno {probe} diverged (failed member: {failed:?})"
                );
            }
        }

        // Final full sweep after repairing any outstanding failure.
        group.reconstruct().unwrap();
        assert_eq!(group.scrub().unwrap(), 0, "case {case}");
        for bno in 0..capacity {
            assert!(
                group.read(bno).unwrap().same_content(&model[bno as usize]),
                "case {case}: bno {bno}"
            );
        }
    }
}
