//! RAID layer errors.

use blockdev::DevError;

/// Errors surfaced by the RAID layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RaidError {
    /// Access beyond the end of the group/volume.
    OutOfRange {
        /// Offending logical block number.
        bno: u64,
        /// Capacity in blocks.
        capacity: u64,
    },
    /// More members failed than parity can cover.
    TooManyFailures {
        /// Index of the group that cannot serve the request.
        group: usize,
    },
    /// An underlying device error that parity could not mask.
    Dev(DevError),
    /// A disk index that does not exist in the group.
    NoSuchDisk {
        /// Requested member index (data disks, then parity).
        disk: usize,
    },
    /// Every retry of a transiently failing member access failed.
    Exhausted {
        /// The logical block being accessed.
        bno: u64,
        /// Attempts made (including the first).
        attempts: u32,
    },
}

impl RaidError {
    /// Whether retrying the operation may succeed (the retry layer only
    /// backs off and retries transient errors).
    pub fn is_transient(&self) -> bool {
        matches!(self, RaidError::Dev(d) if d.is_transient())
    }
}

impl std::fmt::Display for RaidError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RaidError::OutOfRange { bno, capacity } => {
                write!(f, "block {bno} out of range (capacity {capacity})")
            }
            RaidError::TooManyFailures { group } => {
                write!(f, "raid group {group}: multiple failures, data lost")
            }
            RaidError::Dev(e) => write!(f, "device error: {e}"),
            RaidError::NoSuchDisk { disk } => write!(f, "no such disk {disk}"),
            RaidError::Exhausted { bno, attempts } => {
                write!(f, "block {bno}: gave up after {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for RaidError {}

impl From<DevError> for RaidError {
    fn from(e: DevError) -> Self {
        RaidError::Dev(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_key_facts() {
        let e = RaidError::OutOfRange {
            bno: 10,
            capacity: 5,
        };
        assert!(e.to_string().contains("10"));
        assert!(RaidError::TooManyFailures { group: 2 }
            .to_string()
            .contains("group 2"));
    }

    #[test]
    fn dev_errors_convert() {
        let e: RaidError = DevError::Offline.into();
        assert_eq!(e, RaidError::Dev(DevError::Offline));
    }
}
