#![warn(missing_docs)]

//! Software RAID-4, the layer WAFL sits on and image dump/restore bypasses
//! the file system to reach.
//!
//! A [`Raid4Group`] is N data spindles plus one dedicated parity spindle
//! (NetApp's layout of the era). A [`Volume`] concatenates groups into a
//! flat block address space — the paper's `home` volume is 3 groups over 31
//! disks, `rlse` 2 groups over 22.
//!
//! Parity is maintained by subtraction (`new_parity = old_parity ^ old_data
//! ^ new_data`) with a one-stripe write-back cache so that WAFL's long
//! sequential write chains cost one parity write per stripe instead of one
//! per block, matching full-stripe write behaviour. Degraded reads
//! reconstruct from the surviving members; [`Raid4Group::reconstruct`]
//! rebuilds a replaced spindle; [`Raid4Group::scrub`] verifies parity.

pub mod error;
pub mod group;
pub mod volume;

pub use error::RaidError;
pub use group::Raid4Group;
pub use volume::Volume;
pub use volume::VolumeGeometry;
