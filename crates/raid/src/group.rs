//! A RAID-4 group: N data spindles plus one dedicated parity spindle.

use blockdev::Block;
use blockdev::BlockDevice;
use blockdev::DevError;
use blockdev::DeviceStats;
use blockdev::DiskPerf;
use blockdev::SimDisk;
use simkit::retry::RetryPolicy;

use crate::error::RaidError;

/// Parity block cached for the stripe currently being written.
#[derive(Debug)]
struct PendingParity {
    stripe: u64,
    parity: Block,
}

/// Books a retry of a transient member fault: the backoff becomes spindle
/// busy time (and media-delay demand), the retry is counted and traced.
fn note_retry(d: &mut SimDisk, backoff: f64) {
    d.add_busy(backoff);
    obs::gauge("media.delay_secs").add(backoff);
    obs::counter("raid.retries").inc();
    if obs::trace_enabled() {
        obs::event::emit_labeled(obs::event::EventKind::MediaRetry, "member io", 0, backoff);
    }
}

/// Member read under an optional retry policy. Transient faults are
/// retried with metered backoff; the last one propagates if the policy
/// runs out (callers decide whether parity can still serve the request).
fn read_member(
    d: &mut SimDisk,
    offset: u64,
    policy: Option<RetryPolicy>,
) -> Result<Block, DevError> {
    let Some(policy) = policy else {
        return d.read(offset);
    };
    let attempts = policy.attempts.max(1);
    let mut attempt = 1;
    loop {
        match d.read(offset) {
            Err(e) if e.is_transient() && attempt < attempts => {
                note_retry(d, policy.backoff_before(attempt));
                attempt += 1;
            }
            other => return other,
        }
    }
}

/// Member write under an optional retry policy; see [`read_member`].
fn write_member(
    d: &mut SimDisk,
    offset: u64,
    block: Block,
    policy: Option<RetryPolicy>,
) -> Result<(), DevError> {
    let Some(policy) = policy else {
        return d.write(offset, block);
    };
    let attempts = policy.attempts.max(1);
    let mut attempt = 1;
    loop {
        match d.write(offset, block.clone()) {
            Err(e) if e.is_transient() && attempt < attempts => {
                note_retry(d, policy.backoff_before(attempt));
                attempt += 1;
            }
            other => return other,
        }
    }
}

/// A RAID-4 group.
///
/// Logical blocks are striped across the data disks (`disk = bno % ndata`,
/// `offset = bno / ndata`), so sequential logical runs engage every spindle
/// — this is what lets physical dump run the disks at media speed.
pub struct Raid4Group {
    data: Vec<SimDisk>,
    parity: SimDisk,
    blocks_per_disk: u64,
    pending: Option<PendingParity>,
    /// Index of the failed member (`ndata` = parity disk), if any.
    failed: Option<usize>,
    /// True after a second failure: data is unrecoverable.
    lost: bool,
    /// Retry policy for transient member faults (None = no retries).
    retry: Option<RetryPolicy>,
    /// While true, parity *content* is not maintained — only the parity
    /// IO traffic is simulated. A healthy, un-faulted group's parity is a
    /// pure function of its data members (XOR), so the bytes can be
    /// recomputed on demand; skipping the upkeep avoids materializing a
    /// 4 KiB XOR residue for every stripe that ever hosted a literal
    /// (metadata) block, which dominated host memory at paper scales.
    /// Any path that can observe parity content or break the invariant
    /// (fault arming via [`Raid4Group::disk_mut`], member failure, scrub,
    /// reconstruction) first calls [`Raid4Group::materialize_parity`],
    /// which rebuilds the exact bytes eager upkeep would have produced
    /// and drops to eager mode for the rest of the group's life.
    lazy_parity: bool,
}

impl Raid4Group {
    /// Creates a group of `ndata` data disks plus parity, each of
    /// `blocks_per_disk` blocks with the given performance model.
    ///
    /// # Panics
    ///
    /// Panics if `ndata` is zero.
    pub fn new(ndata: usize, blocks_per_disk: u64, perf: DiskPerf) -> Raid4Group {
        assert!(ndata > 0, "a raid group needs at least one data disk");
        Raid4Group {
            data: (0..ndata)
                .map(|_| SimDisk::new(blocks_per_disk, perf))
                .collect(),
            parity: SimDisk::new(blocks_per_disk, perf),
            blocks_per_disk,
            pending: None,
            failed: None,
            lost: false,
            retry: None,
            lazy_parity: true,
        }
    }

    /// Switches from lazy to eager parity, first rebuilding every stripe's
    /// parity bytes from the raw data-member state. Representation-level
    /// only (peek/poke): no service time, no events, no stats — in eager
    /// mode this content would already be present, so the catch-up must be
    /// invisible to every meter. The cached write-back slot is fixed up
    /// too, since all its stripe's data writes have already landed.
    ///
    /// This is the one function allowed to call the unmetered escape
    /// hatches: simlint rule D07 audits every `SimDisk::peek`/`poke` call
    /// site against the `[escape_hatch]` allowlist in `simlint.toml`,
    /// which names exactly this fn.
    fn materialize_parity(&mut self) {
        if !self.lazy_parity {
            return;
        }
        self.lazy_parity = false;
        for offset in 0..self.blocks_per_disk {
            let mut acc = Block::Zero;
            for d in &self.data {
                acc.xor_in_place(d.peek(offset));
            }
            if let Some(p) = &self.pending {
                if p.stripe == offset {
                    self.pending = Some(PendingParity {
                        stripe: offset,
                        parity: acc.clone(),
                    });
                }
            }
            self.parity.poke(offset, acc);
        }
    }

    /// Installs a retry policy for transient member faults. Reads that
    /// stay transient after every attempt fall back to reconstruction
    /// (parity can still serve them); writes surface
    /// [`RaidError::Exhausted`].
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry = Some(policy);
    }

    /// Usable capacity in blocks (parity excluded).
    pub fn capacity(&self) -> u64 {
        self.data.len() as u64 * self.blocks_per_disk
    }

    /// Number of data disks.
    pub fn ndata(&self) -> usize {
        self.data.len()
    }

    /// Total member count including parity.
    pub fn ndisks(&self) -> usize {
        self.data.len() + 1
    }

    /// The index used to address the parity disk in
    /// [`Raid4Group::fail_disk`].
    pub fn parity_index(&self) -> usize {
        self.data.len()
    }

    fn locate(&self, bno: u64) -> Result<(usize, u64), RaidError> {
        if bno >= self.capacity() {
            return Err(RaidError::OutOfRange {
                bno,
                capacity: self.capacity(),
            });
        }
        Ok((
            (bno % self.data.len() as u64) as usize,
            bno / self.data.len() as u64,
        ))
    }

    /// Reads one logical block, reconstructing from parity when the owning
    /// disk has failed.
    pub fn read(&mut self, bno: u64) -> Result<Block, RaidError> {
        if self.lost {
            return Err(RaidError::TooManyFailures { group: 0 });
        }
        let (disk, offset) = self.locate(bno)?;
        match read_member(&mut self.data[disk], offset, self.retry) {
            Ok(b) => Ok(b),
            // Member down — or transiently failing past the whole retry
            // budget: either way parity can still serve the read.
            Err(DevError::Offline) | Err(DevError::Busy { .. }) => {
                obs::counter("raid.degraded_reads").inc();
                // Weight 0: the member reads below emit their own service.
                obs::event::emit(
                    obs::event::EventKind::RaidDegradedRead,
                    blockdev::BLOCK_SIZE as u64,
                    0.0,
                );
                self.reconstruct_block(disk, offset)
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Writes one logical block, maintaining parity by subtraction.
    pub fn write(&mut self, bno: u64, block: Block) -> Result<(), RaidError> {
        if self.lost {
            return Err(RaidError::TooManyFailures { group: 0 });
        }
        let (disk, offset) = self.locate(bno)?;

        // Old data: direct read, or reconstruction if this member is down.
        let old = match read_member(&mut self.data[disk], offset, self.retry) {
            Ok(b) => b,
            Err(DevError::Offline) | Err(DevError::Busy { .. }) => {
                obs::counter("raid.degraded_reads").inc();
                obs::event::emit(
                    obs::event::EventKind::RaidDegradedRead,
                    blockdev::BLOCK_SIZE as u64,
                    0.0,
                );
                self.reconstruct_block(disk, offset)?
            }
            Err(e) => return Err(e.into()),
        };

        // Bring the right stripe's parity into the write-back slot.
        if self
            .pending
            .as_ref()
            .map(|p| p.stripe != offset)
            .unwrap_or(false)
        {
            self.flush()?;
        }
        if self.pending.is_none() {
            let parity = match self.parity.read(offset) {
                Ok(b) => b,
                // Parity disk down: nothing to maintain until reconstruct.
                Err(DevError::Offline) => Block::Zero,
                Err(e) => return Err(e.into()),
            };
            self.pending = Some(PendingParity {
                stripe: offset,
                parity,
            });
        }
        // Parity content upkeep (skipped while lazy: the traffic above is
        // still simulated, the bytes are recomputable on demand).
        if !self.lazy_parity {
            if let Some(p) = self.pending.as_mut() {
                p.parity.xor_in_place(&old);
                p.parity.xor_in_place(&block);
            }
        }

        match write_member(&mut self.data[disk], offset, block, self.retry) {
            Ok(()) | Err(DevError::Offline) => Ok(()),
            Err(DevError::Busy { .. }) => Err(RaidError::Exhausted {
                bno,
                attempts: self.retry.map(|p| p.attempts).unwrap_or(1),
            }),
            Err(e) => Err(e.into()),
        }
    }

    /// Flushes the cached parity block to the parity spindle.
    pub fn flush(&mut self) -> Result<(), RaidError> {
        if let Some(p) = self.pending.take() {
            // Weight 0: the spindle write below carries the service time.
            obs::event::emit(
                obs::event::EventKind::RaidParity,
                blockdev::BLOCK_SIZE as u64,
                0.0,
            );
            match write_member(&mut self.parity, p.stripe, p.parity, self.retry) {
                Ok(()) | Err(DevError::Offline) => Ok(()),
                Err(DevError::Busy { .. }) => Err(RaidError::Exhausted {
                    bno: p.stripe,
                    attempts: self.retry.map(|q| q.attempts).unwrap_or(1),
                }),
                Err(e) => Err(e.into()),
            }
        } else {
            Ok(())
        }
    }

    /// Reconstructs the content of (`disk`, `offset`) from parity and the
    /// surviving members.
    fn reconstruct_block(&mut self, disk: usize, offset: u64) -> Result<Block, RaidError> {
        self.materialize_parity();
        // The cached parity must be on the spindle before we trust it.
        if self
            .pending
            .as_ref()
            .map(|p| p.stripe == offset)
            .unwrap_or(false)
        {
            self.flush()?;
        }
        let retry = self.retry;
        let mut acc = match read_member(&mut self.parity, offset, retry) {
            Ok(b) => b,
            Err(DevError::Offline) => return Err(RaidError::TooManyFailures { group: 0 }),
            Err(e) => return Err(e.into()),
        };
        for (i, d) in self.data.iter_mut().enumerate() {
            if i == disk {
                continue;
            }
            let b = match read_member(d, offset, retry) {
                Ok(b) => b,
                Err(DevError::Offline) => return Err(RaidError::TooManyFailures { group: 0 }),
                Err(e) => return Err(e.into()),
            };
            acc = acc.xor(&b);
        }
        Ok(acc)
    }

    /// Fails a member. `disk` counts data disks first; `ndata` is the
    /// parity spindle. A second concurrent failure marks the group lost.
    pub fn fail_disk(&mut self, disk: usize) -> Result<(), RaidError> {
        if disk > self.data.len() {
            return Err(RaidError::NoSuchDisk { disk });
        }
        self.materialize_parity();
        if let Some(already) = self.failed {
            if already != disk {
                self.lost = true;
            }
        }
        self.failed = Some(disk);
        obs::counter("raid.disk_failures").inc();
        if obs::trace_enabled() {
            let label = if disk == self.data.len() {
                "parity".to_string()
            } else {
                format!("disk {disk}")
            };
            obs::event::emit_labeled(obs::event::EventKind::RaidFault, &label, 0, 0.0);
        }
        if disk == self.data.len() {
            // Cached parity would be written to a dead spindle anyway.
            self.pending = None;
            self.parity.fail();
        } else {
            self.data[disk].fail();
        }
        Ok(())
    }

    /// Replaces the failed member with a fresh spindle and rebuilds its
    /// contents from the survivors.
    pub fn reconstruct(&mut self) -> Result<(), RaidError> {
        if self.lost {
            return Err(RaidError::TooManyFailures { group: 0 });
        }
        self.materialize_parity();
        let Some(disk) = self.failed else {
            return Ok(());
        };
        self.flush()?;
        obs::counter("raid.reconstructions").inc();
        obs::counter("raid.reconstructed_blocks").add(self.blocks_per_disk);
        if obs::trace_enabled() {
            let label = if disk == self.data.len() {
                "parity".to_string()
            } else {
                format!("disk {disk}")
            };
            obs::event::emit_labeled(
                obs::event::EventKind::RaidReconstruct,
                &label,
                self.blocks_per_disk * blockdev::BLOCK_SIZE as u64,
                0.0,
            );
        }
        if disk == self.data.len() {
            self.parity.replace();
            for offset in 0..self.blocks_per_disk {
                let mut acc = Block::Zero;
                for d in self.data.iter_mut() {
                    acc = acc.xor(&d.read(offset)?);
                }
                self.parity.write(offset, acc)?;
            }
        } else {
            self.data[disk].replace();
            for offset in 0..self.blocks_per_disk {
                let content = self.reconstruct_block(disk, offset)?;
                self.data[disk].write(offset, content)?;
            }
        }
        self.failed = None;
        Ok(())
    }

    /// Verifies parity for every stripe; returns the number of bad stripes.
    pub fn scrub(&mut self) -> Result<u64, RaidError> {
        self.materialize_parity();
        self.flush()?;
        obs::counter("raid.scrubs").inc();
        let mut bad = 0;
        for offset in 0..self.blocks_per_disk {
            let mut acc = self.parity.read(offset)?;
            for d in self.data.iter_mut() {
                acc = acc.xor(&d.read(offset)?);
            }
            if !acc.is_zero() {
                bad += 1;
            }
        }
        Ok(bad)
    }

    /// Whether the group is running without a failed member.
    pub fn is_healthy(&self) -> bool {
        self.failed.is_none() && !self.lost
    }

    /// Aggregate traffic counters over all members (parity included).
    pub fn stats(&self) -> DeviceStats {
        let mut s = DeviceStats::default();
        for d in &self.data {
            s.merge(&d.stats());
        }
        s.merge(&self.parity.stats());
        s
    }

    /// Traffic counters for the data spindles only.
    pub fn data_stats(&self) -> DeviceStats {
        let mut s = DeviceStats::default();
        for d in &self.data {
            s.merge(&d.stats());
        }
        s
    }

    /// Fault-injection access to a member (data disks first, parity last).
    /// Handing out a member implies faults may be armed on it, after which
    /// the lazy-parity invariant (content ≡ raw XOR of members) can break
    /// — so parity goes eager first.
    pub fn disk_mut(&mut self, disk: usize) -> Result<&mut SimDisk, RaidError> {
        self.materialize_parity();
        if disk < self.data.len() {
            Ok(&mut self.data[disk])
        } else if disk == self.data.len() {
            Ok(&mut self.parity)
        } else {
            Err(RaidError::NoSuchDisk { disk })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group() -> Raid4Group {
        Raid4Group::new(4, 32, DiskPerf::ideal())
    }

    #[test]
    fn read_write_round_trip() {
        let mut g = group();
        for bno in 0..g.capacity() {
            g.write(bno, Block::Synthetic(bno + 1000)).unwrap();
        }
        for bno in 0..g.capacity() {
            assert!(g
                .read(bno)
                .unwrap()
                .same_content(&Block::Synthetic(bno + 1000)));
        }
    }

    #[test]
    fn capacity_excludes_parity() {
        let g = group();
        assert_eq!(g.capacity(), 4 * 32);
        assert_eq!(g.ndisks(), 5);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut g = group();
        assert!(matches!(
            g.read(g.capacity()),
            Err(RaidError::OutOfRange { .. })
        ));
    }

    #[test]
    fn scrub_is_clean_after_writes() {
        let mut g = group();
        for bno in 0..64 {
            g.write(bno, Block::Synthetic(bno)).unwrap();
        }
        assert_eq!(g.scrub().unwrap(), 0);
    }

    #[test]
    fn degraded_read_reconstructs_data() {
        let mut g = group();
        for bno in 0..g.capacity() {
            g.write(bno, Block::Synthetic(bno * 7)).unwrap();
        }
        g.flush().unwrap();
        g.fail_disk(1).unwrap();
        for bno in 0..g.capacity() {
            assert!(
                g.read(bno)
                    .unwrap()
                    .same_content(&Block::Synthetic(bno * 7)),
                "bno {bno} wrong after disk failure"
            );
        }
    }

    #[test]
    fn degraded_write_remains_recoverable() {
        let mut g = group();
        for bno in 0..g.capacity() {
            g.write(bno, Block::Synthetic(bno)).unwrap();
        }
        g.fail_disk(2).unwrap();
        // Overwrite blocks that live on the dead disk.
        g.write(2, Block::Synthetic(999)).unwrap();
        g.write(6, Block::Synthetic(998)).unwrap();
        assert!(g.read(2).unwrap().same_content(&Block::Synthetic(999)));
        assert!(g.read(6).unwrap().same_content(&Block::Synthetic(998)));
    }

    #[test]
    fn reconstruct_rebuilds_failed_data_disk() {
        let mut g = group();
        for bno in 0..g.capacity() {
            g.write(bno, Block::Synthetic(bno + 5)).unwrap();
        }
        g.fail_disk(0).unwrap();
        g.write(0, Block::Synthetic(12345)).unwrap();
        g.reconstruct().unwrap();
        assert!(g.is_healthy());
        assert_eq!(g.scrub().unwrap(), 0);
        assert!(g.read(0).unwrap().same_content(&Block::Synthetic(12345)));
        assert!(g.read(4).unwrap().same_content(&Block::Synthetic(9)));
    }

    #[test]
    fn reconstruct_rebuilds_parity_disk() {
        let mut g = group();
        for bno in 0..g.capacity() {
            g.write(bno, Block::Synthetic(bno)).unwrap();
        }
        let parity_idx = g.parity_index();
        g.fail_disk(parity_idx).unwrap();
        g.write(3, Block::Synthetic(777)).unwrap();
        g.reconstruct().unwrap();
        assert_eq!(g.scrub().unwrap(), 0);
        assert!(g.read(3).unwrap().same_content(&Block::Synthetic(777)));
    }

    #[test]
    fn double_failure_loses_data() {
        let mut g = group();
        g.write(0, Block::Synthetic(1)).unwrap();
        g.fail_disk(0).unwrap();
        g.fail_disk(1).unwrap();
        assert!(matches!(g.read(0), Err(RaidError::TooManyFailures { .. })));
        assert!(matches!(
            g.reconstruct(),
            Err(RaidError::TooManyFailures { .. })
        ));
    }

    #[test]
    fn scrub_detects_silent_corruption() {
        let spec = simkit::faults::FaultSpec::builder()
            .disk_corrupt(0, 0xbad)
            .build();
        let mut g = group();
        for bno in 0..16 {
            g.write(bno, Block::Synthetic(bno)).unwrap();
        }
        g.flush().unwrap();
        g.disk_mut(1)
            .unwrap()
            .faults_mut()
            .arm(&spec.disk, simkit::rng::SimRng::seed_from_u64(0));
        assert!(g.scrub().unwrap() > 0);
    }

    #[test]
    fn transient_member_read_faults_retry_to_success() {
        let spec = simkit::faults::FaultSpec::builder()
            .disk_read_soft(0.2)
            .build();
        let mut g = group();
        for bno in 0..g.capacity() {
            g.write(bno, Block::Synthetic(bno + 3)).unwrap();
        }
        g.flush().unwrap();
        for i in 0..g.ndisks() {
            let rng = simkit::rng::SimRng::seed_from_u64(40 + i as u64);
            g.disk_mut(i).unwrap().faults_mut().arm(&spec.disk, rng);
        }
        g.set_retry_policy(RetryPolicy::media_default());
        // Every read still returns correct data despite the soft faults.
        for bno in 0..g.capacity() {
            assert!(g
                .read(bno)
                .unwrap()
                .same_content(&Block::Synthetic(bno + 3)));
        }
        let busy = g.stats().busy_secs;
        assert!(busy > 0.0, "retry backoff must surface as busy time");
    }

    #[test]
    fn exhausted_write_surfaces_typed_error() {
        // Certain transient write failure: the retry budget runs dry.
        let spec = simkit::faults::FaultSpec::builder()
            .disk_write_soft(1.0)
            .build();
        let mut g = group();
        let rng = simkit::rng::SimRng::seed_from_u64(1);
        g.disk_mut(0).unwrap().faults_mut().arm(&spec.disk, rng);
        g.set_retry_policy(RetryPolicy::media_default());
        match g.write(0, Block::Synthetic(1)) {
            Err(RaidError::Exhausted {
                bno: 0,
                attempts: 4,
            }) => {}
            other => panic!("expected exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn stripe_cache_amortizes_parity_writes() {
        let mut g = group();
        // One full stripe = 4 sequential logical blocks sharing offset 0.
        for bno in 0..4 {
            g.write(bno, Block::Synthetic(bno)).unwrap();
        }
        g.flush().unwrap();
        // Parity spindle should have seen exactly one write for the stripe.
        let parity_writes = {
            let idx = g.parity_index();
            g.disk_mut(idx).unwrap().stats().writes().ops
        };
        assert_eq!(parity_writes, 1);
        assert_eq!(g.scrub().unwrap(), 0);
    }

    #[test]
    fn no_such_disk_is_reported() {
        let mut g = group();
        assert!(matches!(g.fail_disk(9), Err(RaidError::NoSuchDisk { .. })));
        assert!(matches!(g.disk_mut(9), Err(RaidError::NoSuchDisk { .. })));
    }
}
