//! A volume: the flat block address space over one or more RAID-4 groups.

use blockdev::Block;
use blockdev::BlockDevice;
use blockdev::DevError;
use blockdev::DeviceStats;
use blockdev::DiskPerf;
use simkit::faults::FaultSpec;
use simkit::retry::RetryPolicy;
use simkit::rng::SimRng;

use crate::error::RaidError;
use crate::group::Raid4Group;

/// Armed RAID chaos: a countdown to a member failure (and optionally to
/// its background reconstruction), ticked once per volume block IO.
#[derive(Debug)]
struct RaidChaos {
    rng: SimRng,
    /// Member counts per group, captured at arm time so the tick can pick
    /// a victim without borrowing the groups.
    ndisks: Vec<u64>,
    fail_after: u64,
    reconstruct_after: Option<u64>,
    ios: u64,
    failed_group: Option<usize>,
    rebuilt: bool,
}

/// Shape of a volume: one entry per RAID group.
#[derive(Debug, Clone)]
pub struct VolumeGeometry {
    /// `(data disks, blocks per disk)` per group.
    pub groups: Vec<(usize, u64)>,
    /// Spindle performance model shared by all members.
    pub perf: DiskPerf,
}

impl VolumeGeometry {
    /// A geometry of `ngroups` identical groups.
    pub fn uniform(ngroups: usize, ndata: usize, blocks_per_disk: u64, perf: DiskPerf) -> Self {
        VolumeGeometry {
            groups: vec![(ndata, blocks_per_disk); ngroups],
            perf,
        }
    }

    /// Usable capacity in blocks.
    pub fn capacity(&self) -> u64 {
        self.groups.iter().map(|&(n, b)| n as u64 * b).sum()
    }

    /// Total spindle count including parity disks.
    pub fn total_disks(&self) -> usize {
        self.groups.iter().map(|&(n, _)| n + 1).sum()
    }

    /// Data spindle count.
    pub fn data_disks(&self) -> usize {
        self.groups.iter().map(|&(n, _)| n).sum()
    }
}

/// A multi-group volume. Image dump and restore address it directly; WAFL
/// lives on top of it.
pub struct Volume {
    groups: Vec<Raid4Group>,
    /// Cumulative capacity boundaries for group lookup.
    bounds: Vec<u64>,
    geometry: VolumeGeometry,
    /// Armed chaos countdown (None = zero-cost, nothing injected).
    chaos: Option<RaidChaos>,
}

impl Volume {
    /// Builds a volume from a geometry.
    pub fn new(geometry: VolumeGeometry) -> Volume {
        let groups: Vec<Raid4Group> = geometry
            .groups
            .iter()
            .map(|&(ndata, bpd)| Raid4Group::new(ndata, bpd, geometry.perf))
            .collect();
        let mut bounds = Vec::with_capacity(groups.len());
        let mut acc = 0;
        for g in &groups {
            acc += g.capacity();
            bounds.push(acc);
        }
        Volume {
            groups,
            bounds,
            geometry,
            chaos: None,
        }
    }

    /// The geometry this volume was built from.
    pub fn geometry(&self) -> &VolumeGeometry {
        &self.geometry
    }

    /// Arms the disk and RAID sections of a unified fault spec against
    /// this volume: every member spindle gets the disk section with a
    /// forked seeded RNG, and `[raid] fail_disk_after`/`reconstruct_after`
    /// install a countdown that fails one randomly chosen member (and
    /// later rebuilds it) while IO is running. Deterministic per
    /// `spec.seed`; a spec with empty sections arms nothing.
    pub fn arm_faults(&mut self, spec: &FaultSpec) {
        let mut rng = SimRng::seed_from_u64(spec.seed);
        if !spec.disk.is_empty() {
            let mut label = 0u64;
            for g in &mut self.groups {
                for i in 0..g.ndisks() {
                    let fork = rng.fork(label);
                    label += 1;
                    if let Ok(d) = g.disk_mut(i) {
                        d.faults_mut().arm(&spec.disk, fork);
                    }
                }
            }
        }
        if let Some(fail_after) = spec.raid.fail_disk_after {
            self.chaos = Some(RaidChaos {
                rng: rng.fork(u64::MAX),
                ndisks: self.groups.iter().map(|g| g.ndisks() as u64).collect(),
                fail_after,
                reconstruct_after: spec.raid.reconstruct_after,
                ios: 0,
                failed_group: None,
                rebuilt: false,
            });
        }
    }

    /// Installs a retry policy for transient member faults in every group.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        for g in &mut self.groups {
            g.set_retry_policy(policy);
        }
    }

    /// Advances the armed chaos countdown by one IO, firing the member
    /// failure / reconstruction when their thresholds pass.
    fn tick_chaos(&mut self) -> Result<(), RaidError> {
        let Some(chaos) = self.chaos.as_mut() else {
            return Ok(());
        };
        chaos.ios += 1;
        let mut fail: Option<(usize, usize)> = None;
        let mut rebuild: Option<usize> = None;
        if chaos.failed_group.is_none() && chaos.ios >= chaos.fail_after {
            let gi = chaos.rng.range(0, chaos.ndisks.len() as u64) as usize;
            let member = chaos.rng.range(0, chaos.ndisks[gi]) as usize;
            chaos.failed_group = Some(gi);
            fail = Some((gi, member));
        }
        if let (Some(gi), Some(after)) = (chaos.failed_group, chaos.reconstruct_after) {
            if fail.is_none()
                && !chaos.rebuilt
                && chaos.ios >= chaos.fail_after.saturating_add(after)
            {
                chaos.rebuilt = true;
                rebuild = Some(gi);
            }
        }
        if let Some((gi, member)) = fail {
            self.groups[gi].fail_disk(member)?;
        }
        if let Some(gi) = rebuild {
            self.groups[gi].reconstruct()?;
        }
        Ok(())
    }

    /// Usable capacity in blocks.
    pub fn capacity(&self) -> u64 {
        *self.bounds.last().unwrap_or(&0)
    }

    fn locate(&self, bno: u64) -> Result<(usize, u64), RaidError> {
        if bno >= self.capacity() {
            return Err(RaidError::OutOfRange {
                bno,
                capacity: self.capacity(),
            });
        }
        let gi = self.bounds.partition_point(|&b| b <= bno);
        let base = if gi == 0 { 0 } else { self.bounds[gi - 1] };
        Ok((gi, bno - base))
    }

    /// Reads one volume block.
    pub fn read_block(&mut self, bno: u64) -> Result<Block, RaidError> {
        self.tick_chaos()?;
        let (gi, rel) = self.locate(bno)?;
        self.groups[gi].read(rel)
    }

    /// Writes one volume block.
    pub fn write_block(&mut self, bno: u64, block: Block) -> Result<(), RaidError> {
        self.tick_chaos()?;
        let (gi, rel) = self.locate(bno)?;
        self.groups[gi].write(rel, block)
    }

    /// Flushes cached parity in every group.
    pub fn sync(&mut self) -> Result<(), RaidError> {
        for g in &mut self.groups {
            g.flush()?;
        }
        Ok(())
    }

    /// Number of RAID groups.
    pub fn ngroups(&self) -> usize {
        self.groups.len()
    }

    /// Mutable access to a group (failure injection, scrub, reconstruct).
    pub fn group_mut(&mut self, group: usize) -> Option<&mut Raid4Group> {
        self.groups.get_mut(group)
    }

    /// Aggregate traffic over all spindles including parity.
    pub fn all_stats(&self) -> DeviceStats {
        let mut s = DeviceStats::default();
        for g in &self.groups {
            s.merge(&g.stats());
        }
        s
    }

    /// Aggregate traffic over data spindles only.
    pub fn data_stats(&self) -> DeviceStats {
        let mut s = DeviceStats::default();
        for g in &self.groups {
            s.merge(&g.data_stats());
        }
        s
    }

    /// True when every group has all members online.
    pub fn is_healthy(&self) -> bool {
        self.groups.iter().all(|g| g.is_healthy())
    }
}

impl BlockDevice for Volume {
    fn nblocks(&self) -> u64 {
        self.capacity()
    }

    fn read(&mut self, bno: u64) -> Result<Block, DevError> {
        self.read_block(bno).map_err(|e| match e {
            RaidError::Dev(d) => d,
            RaidError::OutOfRange { bno, capacity } => DevError::OutOfRange {
                bno,
                nblocks: capacity,
            },
            _ => DevError::Io { bno },
        })
    }

    fn write(&mut self, bno: u64, block: Block) -> Result<(), DevError> {
        self.write_block(bno, block).map_err(|e| match e {
            RaidError::Dev(d) => d,
            RaidError::OutOfRange { bno, capacity } => DevError::OutOfRange {
                bno,
                nblocks: capacity,
            },
            _ => DevError::Io { bno },
        })
    }

    fn stats(&self) -> DeviceStats {
        self.all_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn volume() -> Volume {
        // Two asymmetric groups: 2x16 and 3x16 data blocks.
        Volume::new(VolumeGeometry {
            groups: vec![(2, 16), (3, 16)],
            perf: DiskPerf::ideal(),
        })
    }

    #[test]
    fn geometry_arithmetic() {
        let geo = VolumeGeometry::uniform(3, 10, 100, DiskPerf::ideal());
        assert_eq!(geo.capacity(), 3000);
        assert_eq!(geo.total_disks(), 33);
        assert_eq!(geo.data_disks(), 30);
    }

    #[test]
    fn blocks_span_group_boundary() {
        let mut v = volume();
        assert_eq!(v.capacity(), 2 * 16 + 3 * 16);
        for bno in 0..v.capacity() {
            v.write_block(bno, Block::Synthetic(bno + 1)).unwrap();
        }
        for bno in 0..v.capacity() {
            assert!(v
                .read_block(bno)
                .unwrap()
                .same_content(&Block::Synthetic(bno + 1)));
        }
    }

    #[test]
    fn out_of_range_is_rejected() {
        let mut v = volume();
        let cap = v.capacity();
        assert!(matches!(
            v.read_block(cap),
            Err(RaidError::OutOfRange { .. })
        ));
    }

    #[test]
    fn group_failure_is_masked() {
        let mut v = volume();
        for bno in 0..v.capacity() {
            v.write_block(bno, Block::Synthetic(bno)).unwrap();
        }
        v.sync().unwrap();
        v.group_mut(1).unwrap().fail_disk(0).unwrap();
        assert!(!v.is_healthy());
        for bno in 0..v.capacity() {
            assert!(v
                .read_block(bno)
                .unwrap()
                .same_content(&Block::Synthetic(bno)));
        }
        v.group_mut(1).unwrap().reconstruct().unwrap();
        assert!(v.is_healthy());
    }

    #[test]
    fn device_trait_adapts_errors() {
        let mut v = volume();
        let cap = v.capacity();
        let err = BlockDevice::read(&mut v, cap).unwrap_err();
        assert!(matches!(err, DevError::OutOfRange { .. }));
        BlockDevice::write(&mut v, 0, Block::Synthetic(5)).unwrap();
        assert!(BlockDevice::read(&mut v, 0)
            .unwrap()
            .same_content(&Block::Synthetic(5)));
    }

    #[test]
    fn armed_chaos_fails_one_disk_mid_stream_and_rebuilds() {
        let spec = FaultSpec::builder()
            .seed(99)
            .raid_fail_disk_after(20)
            .raid_reconstruct_after(40)
            .build();
        let mut v = volume();
        for bno in 0..v.capacity() {
            v.write_block(bno, Block::Synthetic(bno + 1)).unwrap();
        }
        v.sync().unwrap();
        v.arm_faults(&spec);
        v.set_retry_policy(RetryPolicy::media_default());
        let mut unhealthy_seen = false;
        // Stream reads: the failure fires mid-stream, reads keep working
        // in degraded mode, and the rebuild brings the volume back.
        for pass in 0..3 {
            for bno in 0..v.capacity() {
                let b = v.read_block(bno).unwrap();
                assert!(
                    b.same_content(&Block::Synthetic(bno + 1)),
                    "pass {pass} bno {bno} wrong"
                );
                unhealthy_seen |= !v.is_healthy();
            }
        }
        assert!(unhealthy_seen, "the armed failure must have fired");
        assert!(v.is_healthy(), "reconstruction must have completed");
    }

    #[test]
    fn armed_chaos_is_deterministic_per_seed() {
        let spec = FaultSpec::builder().seed(7).raid_fail_disk_after(5).build();
        let run = |spec: &FaultSpec| -> Vec<bool> {
            let mut v = volume();
            for bno in 0..v.capacity() {
                v.write_block(bno, Block::Synthetic(bno)).unwrap();
            }
            v.sync().unwrap();
            v.arm_faults(spec);
            (0..v.capacity())
                .map(|bno| {
                    v.read_block(bno).unwrap();
                    v.is_healthy()
                })
                .collect()
        };
        assert_eq!(run(&spec), run(&spec));
    }

    #[test]
    fn empty_spec_arms_nothing() {
        let mut v = volume();
        v.arm_faults(&FaultSpec::default());
        v.write_block(0, Block::Synthetic(1)).unwrap();
        assert!(v.is_healthy());
    }

    #[test]
    fn stats_aggregate_members() {
        let mut v = volume();
        v.write_block(0, Block::Synthetic(1)).unwrap();
        v.sync().unwrap();
        let all = v.all_stats();
        let data = v.data_stats();
        // The parity spindle adds traffic beyond the data disks.
        assert!(all.total_bytes() > data.total_bytes());
        assert!(data.writes().ops >= 1);
    }
}
