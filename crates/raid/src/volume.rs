//! A volume: the flat block address space over one or more RAID-4 groups.

use blockdev::Block;
use blockdev::BlockDevice;
use blockdev::DevError;
use blockdev::DeviceStats;
use blockdev::DiskPerf;

use crate::error::RaidError;
use crate::group::Raid4Group;

/// Shape of a volume: one entry per RAID group.
#[derive(Debug, Clone)]
pub struct VolumeGeometry {
    /// `(data disks, blocks per disk)` per group.
    pub groups: Vec<(usize, u64)>,
    /// Spindle performance model shared by all members.
    pub perf: DiskPerf,
}

impl VolumeGeometry {
    /// A geometry of `ngroups` identical groups.
    pub fn uniform(ngroups: usize, ndata: usize, blocks_per_disk: u64, perf: DiskPerf) -> Self {
        VolumeGeometry {
            groups: vec![(ndata, blocks_per_disk); ngroups],
            perf,
        }
    }

    /// Usable capacity in blocks.
    pub fn capacity(&self) -> u64 {
        self.groups.iter().map(|&(n, b)| n as u64 * b).sum()
    }

    /// Total spindle count including parity disks.
    pub fn total_disks(&self) -> usize {
        self.groups.iter().map(|&(n, _)| n + 1).sum()
    }

    /// Data spindle count.
    pub fn data_disks(&self) -> usize {
        self.groups.iter().map(|&(n, _)| n).sum()
    }
}

/// A multi-group volume. Image dump and restore address it directly; WAFL
/// lives on top of it.
pub struct Volume {
    groups: Vec<Raid4Group>,
    /// Cumulative capacity boundaries for group lookup.
    bounds: Vec<u64>,
    geometry: VolumeGeometry,
}

impl Volume {
    /// Builds a volume from a geometry.
    pub fn new(geometry: VolumeGeometry) -> Volume {
        let groups: Vec<Raid4Group> = geometry
            .groups
            .iter()
            .map(|&(ndata, bpd)| Raid4Group::new(ndata, bpd, geometry.perf))
            .collect();
        let mut bounds = Vec::with_capacity(groups.len());
        let mut acc = 0;
        for g in &groups {
            acc += g.capacity();
            bounds.push(acc);
        }
        Volume {
            groups,
            bounds,
            geometry,
        }
    }

    /// The geometry this volume was built from.
    pub fn geometry(&self) -> &VolumeGeometry {
        &self.geometry
    }

    /// Usable capacity in blocks.
    pub fn capacity(&self) -> u64 {
        *self.bounds.last().unwrap_or(&0)
    }

    fn locate(&self, bno: u64) -> Result<(usize, u64), RaidError> {
        if bno >= self.capacity() {
            return Err(RaidError::OutOfRange {
                bno,
                capacity: self.capacity(),
            });
        }
        let gi = self.bounds.partition_point(|&b| b <= bno);
        let base = if gi == 0 { 0 } else { self.bounds[gi - 1] };
        Ok((gi, bno - base))
    }

    /// Reads one volume block.
    pub fn read_block(&mut self, bno: u64) -> Result<Block, RaidError> {
        let (gi, rel) = self.locate(bno)?;
        self.groups[gi].read(rel)
    }

    /// Writes one volume block.
    pub fn write_block(&mut self, bno: u64, block: Block) -> Result<(), RaidError> {
        let (gi, rel) = self.locate(bno)?;
        self.groups[gi].write(rel, block)
    }

    /// Flushes cached parity in every group.
    pub fn sync(&mut self) -> Result<(), RaidError> {
        for g in &mut self.groups {
            g.flush()?;
        }
        Ok(())
    }

    /// Number of RAID groups.
    pub fn ngroups(&self) -> usize {
        self.groups.len()
    }

    /// Mutable access to a group (failure injection, scrub, reconstruct).
    pub fn group_mut(&mut self, group: usize) -> Option<&mut Raid4Group> {
        self.groups.get_mut(group)
    }

    /// Aggregate traffic over all spindles including parity.
    pub fn all_stats(&self) -> DeviceStats {
        let mut s = DeviceStats::default();
        for g in &self.groups {
            s.merge(&g.stats());
        }
        s
    }

    /// Aggregate traffic over data spindles only.
    pub fn data_stats(&self) -> DeviceStats {
        let mut s = DeviceStats::default();
        for g in &self.groups {
            s.merge(&g.data_stats());
        }
        s
    }

    /// True when every group has all members online.
    pub fn is_healthy(&self) -> bool {
        self.groups.iter().all(|g| g.is_healthy())
    }
}

impl BlockDevice for Volume {
    fn nblocks(&self) -> u64 {
        self.capacity()
    }

    fn read(&mut self, bno: u64) -> Result<Block, DevError> {
        self.read_block(bno).map_err(|e| match e {
            RaidError::Dev(d) => d,
            RaidError::OutOfRange { bno, capacity } => DevError::OutOfRange {
                bno,
                nblocks: capacity,
            },
            _ => DevError::Io { bno },
        })
    }

    fn write(&mut self, bno: u64, block: Block) -> Result<(), DevError> {
        self.write_block(bno, block).map_err(|e| match e {
            RaidError::Dev(d) => d,
            RaidError::OutOfRange { bno, capacity } => DevError::OutOfRange {
                bno,
                nblocks: capacity,
            },
            _ => DevError::Io { bno },
        })
    }

    fn stats(&self) -> DeviceStats {
        self.all_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn volume() -> Volume {
        // Two asymmetric groups: 2x16 and 3x16 data blocks.
        Volume::new(VolumeGeometry {
            groups: vec![(2, 16), (3, 16)],
            perf: DiskPerf::ideal(),
        })
    }

    #[test]
    fn geometry_arithmetic() {
        let geo = VolumeGeometry::uniform(3, 10, 100, DiskPerf::ideal());
        assert_eq!(geo.capacity(), 3000);
        assert_eq!(geo.total_disks(), 33);
        assert_eq!(geo.data_disks(), 30);
    }

    #[test]
    fn blocks_span_group_boundary() {
        let mut v = volume();
        assert_eq!(v.capacity(), 2 * 16 + 3 * 16);
        for bno in 0..v.capacity() {
            v.write_block(bno, Block::Synthetic(bno + 1)).unwrap();
        }
        for bno in 0..v.capacity() {
            assert!(v
                .read_block(bno)
                .unwrap()
                .same_content(&Block::Synthetic(bno + 1)));
        }
    }

    #[test]
    fn out_of_range_is_rejected() {
        let mut v = volume();
        let cap = v.capacity();
        assert!(matches!(
            v.read_block(cap),
            Err(RaidError::OutOfRange { .. })
        ));
    }

    #[test]
    fn group_failure_is_masked() {
        let mut v = volume();
        for bno in 0..v.capacity() {
            v.write_block(bno, Block::Synthetic(bno)).unwrap();
        }
        v.sync().unwrap();
        v.group_mut(1).unwrap().fail_disk(0).unwrap();
        assert!(!v.is_healthy());
        for bno in 0..v.capacity() {
            assert!(v
                .read_block(bno)
                .unwrap()
                .same_content(&Block::Synthetic(bno)));
        }
        v.group_mut(1).unwrap().reconstruct().unwrap();
        assert!(v.is_healthy());
    }

    #[test]
    fn device_trait_adapts_errors() {
        let mut v = volume();
        let cap = v.capacity();
        let err = BlockDevice::read(&mut v, cap).unwrap_err();
        assert!(matches!(err, DevError::OutOfRange { .. }));
        BlockDevice::write(&mut v, 0, Block::Synthetic(5)).unwrap();
        assert!(BlockDevice::read(&mut v, 0)
            .unwrap()
            .same_content(&Block::Synthetic(5)));
    }

    #[test]
    fn stats_aggregate_members() {
        let mut v = volume();
        v.write_block(0, Block::Synthetic(1)).unwrap();
        v.sync().unwrap();
        let all = v.all_stats();
        let data = v.data_stats();
        // The parity spindle adds traffic beyond the data disks.
        assert!(all.total_bytes() > data.total_bytes());
        assert!(data.writes().ops >= 1);
    }
}
