//! The paper's qualitative claims about the two strategies, as
//! assertions. Each test cites the claim it pins down.

use wafl_backup::backup_core::logical::format::DumpError;
use wafl_backup::backup_core::physical::format::ImageError;
use wafl_backup::nvram;
use wafl_backup::prelude::*;

fn geometry() -> VolumeGeometry {
    VolumeGeometry::uniform(1, 4, 4096, DiskPerf::ideal())
}

fn small_fs() -> Wafl {
    let mut fs = Wafl::format(Volume::new(geometry()), WaflConfig::default()).unwrap();
    let d = fs
        .create(INO_ROOT, "d", FileType::Dir, Attrs::default())
        .unwrap();
    for i in 0..12u64 {
        let f = fs
            .create(d, &format!("f{i}"), FileType::File, Attrs::default())
            .unwrap();
        for b in 0..8 {
            fs.write_fbn(f, b, Block::Synthetic(i * 10 + b)).unwrap();
        }
    }
    fs
}

/// §4: "since the data is not interpreted when it is written, it is
/// extremely non-portable" — an image stream refuses a different-geometry
/// volume, while the logical stream restores anywhere.
#[test]
fn portability_asymmetry() {
    let mut src = small_fs();

    let mut ltape = TapeDrive::new(TapePerf::ideal(), u64::MAX);
    let mut catalog = DumpCatalog::new();
    dump(&mut src, &mut ltape, &mut catalog, &DumpOptions::default()).unwrap();
    let mut ptape = TapeDrive::new(TapePerf::ideal(), u64::MAX);
    image_dump_full(&mut src, &mut ptape, "snap").unwrap();

    // A bigger filer with a different RAID shape.
    let other_geometry = VolumeGeometry::uniform(2, 6, 8192, DiskPerf::ideal());

    // Logical: restores fine.
    let mut other =
        Wafl::format(Volume::new(other_geometry.clone()), WaflConfig::default()).unwrap();
    restore(&mut other, &mut ltape, "/").unwrap();
    let diffs = compare_trees(&mut src, &mut other).unwrap();
    assert!(diffs.is_empty(), "logical must be portable: {diffs:?}");

    // Physical: refused.
    let meter = Meter::new_shared();
    let mut raw = Volume::new(other_geometry);
    let err = image_restore(&mut ptape, &mut raw, &meter, &CostModel::zero()).unwrap_err();
    assert!(matches!(err, ImageError::GeometryMismatch { .. }));
}

/// §3 vs §4: a damaged tape record costs logical restore one file and
/// physical restore everything.
#[test]
fn corruption_resilience_asymmetry() {
    let mut src = small_fs();

    let mut ltape = TapeDrive::new(TapePerf::ideal(), u64::MAX);
    let mut catalog = DumpCatalog::new();
    let lout = dump(&mut src, &mut ltape, &mut catalog, &DumpOptions::default()).unwrap();
    let mut ptape = TapeDrive::new(TapePerf::ideal(), u64::MAX);
    image_dump_full(&mut src, &mut ptape, "snap").unwrap();

    // Damage one mid-stream record on each tape.
    let l_total = ltape.total_records();
    assert!(ltape.corrupt_record(l_total / 2));
    let p_total = ptape.total_records();
    assert!(ptape.corrupt_record(p_total / 2));

    // Logical: loses at most a file or two, reports it, restores the rest.
    let mut lrestored = Wafl::format(Volume::new(geometry()), WaflConfig::default()).unwrap();
    let res = restore(&mut lrestored, &mut ltape, "/").unwrap();
    assert!(!res.warnings.is_empty());
    assert!(
        res.files >= lout.files - 2,
        "lost too much: {} of {}",
        res.files,
        lout.files
    );

    // Physical: the whole restore is poisoned.
    let meter = Meter::new_shared();
    let mut raw = Volume::new(geometry());
    let err = image_restore(&mut ptape, &mut raw, &meter, &CostModel::zero()).unwrap_err();
    assert!(matches!(err, ImageError::Media(_)));
}

/// §4.1: "the block based device can backup all snapshots of the system"
/// while logical dump "preserves just the live file system".
#[test]
fn snapshot_preservation_asymmetry() {
    let mut src = small_fs();
    // A snapshot holding a deleted file.
    let doomed = src
        .create(INO_ROOT, "doomed", FileType::File, Attrs::default())
        .unwrap();
    src.write_fbn(doomed, 0, Block::Synthetic(404)).unwrap();
    src.snapshot_create("history").unwrap();
    src.remove(INO_ROOT, "doomed").unwrap();
    src.cp().unwrap();

    let mut ltape = TapeDrive::new(TapePerf::ideal(), u64::MAX);
    let mut catalog = DumpCatalog::new();
    dump(&mut src, &mut ltape, &mut catalog, &DumpOptions::default()).unwrap();
    let mut ptape = TapeDrive::new(TapePerf::ideal(), u64::MAX);
    image_dump_full(&mut src, &mut ptape, "weekly").unwrap();

    // Logical restore: live tree only; the snapshot (and its deleted
    // file) are not reproduced.
    let mut lrestored = Wafl::format(Volume::new(geometry()), WaflConfig::default()).unwrap();
    restore(&mut lrestored, &mut ltape, "/").unwrap();
    assert!(lrestored.snapshot_by_name("history").is_none());

    // Physical restore: snapshots and all.
    let meter = Meter::new_shared();
    let mut raw = Volume::new(geometry());
    image_restore(&mut ptape, &mut raw, &meter, &CostModel::zero()).unwrap();
    let mut prestored = Wafl::mount(
        raw,
        nvram::NvramLog::new(32 << 20),
        WaflConfig::default(),
        Meter::new_shared(),
        CostModel::zero(),
    )
    .unwrap();
    let hist = prestored
        .snapshot_by_name("history")
        .expect("snapshot survives")
        .id;
    let mut view = prestored.snap_view(hist).unwrap();
    assert!(
        view.namei("/doomed").is_ok(),
        "deleted file lives in the snapshot"
    );
}

/// §3: logical backup can take a *subset* and filter files; §4: "neither
/// incremental backups nor backing up less than entire devices is
/// possible" for raw physical backup (WAFL's snapshot trick restores the
/// incremental part, but subsetting stays impossible).
#[test]
fn subset_capability_asymmetry() {
    let mut src = small_fs();
    let mut catalog = DumpCatalog::new();

    // Logical: dump only /d, excluding one name.
    let mut tape = TapeDrive::new(TapePerf::ideal(), u64::MAX);
    let out = dump(
        &mut src,
        &mut tape,
        &mut catalog,
        &DumpOptions {
            subtree: "/d".into(),
            exclude_names: vec!["f3".into()],
            ..DumpOptions::default()
        },
    )
    .unwrap();
    assert_eq!(out.files, 11, "12 files minus the excluded one");

    // Physical: the dump set is every allocated block, no less.
    let mut ptape = TapeDrive::new(TapePerf::ideal(), u64::MAX);
    let img = image_dump_full(&mut src, &mut ptape, "all").unwrap();
    assert_eq!(
        img.blocks,
        src.blkmap().nblocks() - src.free_blocks(),
        "image dump carries exactly the allocated set"
    );
}

/// §3: dump streams restore across *levels* correctly even when the dump
/// root path is missing on the target (NotInDump error paths).
#[test]
fn selective_restore_error_paths() {
    let mut src = small_fs();
    let mut tape = TapeDrive::new(TapePerf::ideal(), u64::MAX);
    let mut catalog = DumpCatalog::new();
    dump(&mut src, &mut tape, &mut catalog, &DumpOptions::default()).unwrap();
    let err = restore_single(&mut src, &mut tape, "/no/such/file", "/").unwrap_err();
    assert!(matches!(err, DumpError::NotInDump { .. }));
}
