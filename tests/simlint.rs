//! Tier-1 hook: the root crate must satisfy the workspace's simulation
//! invariants (see simlint.toml and DESIGN.md).

#[test]
fn simlint_clean() {
    simlint::assert_crate_clean(env!("CARGO_MANIFEST_DIR"));
}
