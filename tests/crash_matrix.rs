//! The recovery property matrix: every enumerated crash point × both
//! backup engines × a spread of seeds.
//!
//! The contract under test (DESIGN.md "The crash model"):
//!
//! 1. **Atomicity** — after a power loss at any crash point and a reboot
//!    (NVRAM replay + `wafl::check`), the recovered file system equals
//!    *exactly* the state with `k` acknowledged operations or the state
//!    with `k + 1` — never anything in between and never a corrupt image.
//! 2. **Restartability** — a dump interrupted at any point and resumed
//!    from its `NvScratch` checkpoint produces a stream *byte-identical*
//!    to an uninterrupted dump of the same file system, and that stream
//!    restores to an exact copy of the source.
//! 3. **Determinism** — rerunning any cell with the same seed trips the
//!    same point at the same hit count and recovers to the same state.
//!
//! Interrupted restores recover by rerunning (the paper's footnote 2: an
//! interrupted restore just restarts), and `Mirror::sync_via` converges
//! by rerunning the whole sync after a mid-transfer power loss.

use net::LinkSpec;
use net::NetTarget;
use wafl_backup::backup_core::verify::compare_used_blocks;
use wafl_backup::prelude::*;
use wafl_backup::simkit::crash;
use wafl_backup::simkit::crash::CrashPlan;
use wafl_backup::simkit::crash::CrashPoint;
use wafl_backup::simkit::media::MediaError;
use wafl_backup::simkit::media::Record;
use wafl_backup::simkit::rng::SimRng;
use wafl_backup::wafl::check;
use wafl_backup::wafl::error::WaflError;

const SEEDS: u64 = 8;
const FILES: u64 = 12;
const N_OPS: usize = 24;
const CP_EVERY: usize = 6;

/// Which backup engine a matrix cell exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EngineKind {
    Image,
    Logical,
}

impl EngineKind {
    const BOTH: [EngineKind; 2] = [EngineKind::Image, EngineKind::Logical];

    fn name(self) -> &'static str {
        match self {
            EngineKind::Image => "image",
            EngineKind::Logical => "logical",
        }
    }
}

fn geometry() -> VolumeGeometry {
    VolumeGeometry::uniform(2, 4, 4096, DiskPerf::ideal())
}

fn tape() -> TapeDrive {
    TapeDrive::new(TapePerf::ideal(), 1 << 30)
}

/// Per-cell RNG stream, disjoint across (seed, point, engine).
fn cell_rng(seed: u64, point: CrashPoint, kind: EngineKind) -> SimRng {
    let tag = (point.name().len() as u64) << 8 | kind.name().len() as u64;
    SimRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ tag)
}

/// A seeded base file system: /data with FILES files plus one large file,
/// committed by a consistency point.
fn build_base(seed: u64) -> Wafl {
    let mut fs = Wafl::format(Volume::new(geometry()), WaflConfig::default()).expect("format");
    let mut rng = SimRng::seed_from_u64(seed.wrapping_add(0xbace));
    let data = fs
        .create(INO_ROOT, "data", FileType::Dir, Attrs::default())
        .expect("mkdir /data");
    for i in 0..FILES {
        let f = fs
            .create(data, &format!("f{i:02}"), FileType::File, Attrs::default())
            .expect("create file");
        for fbn in 0..4 + rng.range(0, 5) {
            fs.write_fbn(f, fbn, Block::Synthetic(rng.range(0, u64::MAX)))
                .expect("write");
        }
    }
    let big = fs
        .create(data, "big", FileType::File, Attrs::default())
        .expect("create big");
    for fbn in 0..20 {
        fs.write_fbn(big, fbn, Block::Synthetic(rng.range(0, u64::MAX)))
            .expect("write big");
    }
    fs.cp().expect("base cp");
    fs
}

/// Mutation `i` of the seeded op stream. Fully determined by `(seed, i)`
/// and the deterministic prefix before it, so a reference rebuild replays
/// the identical sequence.
fn apply_op(fs: &mut Wafl, seed: u64, i: usize) -> Result<(), WaflError> {
    let mut rng = SimRng::seed_from_u64(seed.wrapping_mul(1_000_003).wrapping_add(i as u64));
    let target = format!("/data/f{:02}", rng.range(0, FILES));
    match i % 4 {
        0 => {
            let ino = fs.namei(&target)?;
            fs.write_fbn(
                ino,
                rng.range(0, 4),
                Block::Synthetic(rng.range(0, u64::MAX)),
            )?;
        }
        1 => {
            let data = fs.namei("/data")?;
            let ino = fs.create(data, &format!("op{i:02}"), FileType::File, Attrs::default())?;
            fs.write_fbn(ino, 0, Block::Synthetic(rng.range(0, u64::MAX)))?;
        }
        2 => {
            let ino = fs.namei(&target)?;
            fs.set_attrs(
                ino,
                Attrs {
                    perm: 0o600 | (i as u16 & 0o077),
                    uid: rng.range(0, 100) as u32,
                    ..Attrs::default()
                },
            )?;
        }
        _ => {
            let ino = fs.namei(&target)?;
            fs.write_fbn(
                ino,
                4 + rng.range(0, 3),
                Block::Synthetic(rng.range(0, u64::MAX)),
            )?;
        }
    }
    Ok(())
}

/// Applies ops `[0, N_OPS)` with a consistency point every CP_EVERY ops
/// plus a final one, tracking how many ops were acknowledged in `acked`.
fn run_mutations(fs: &mut Wafl, seed: u64, acked: &mut usize) -> Result<(), WaflError> {
    for i in 0..N_OPS {
        apply_op(fs, seed, i)?;
        *acked = i + 1;
        if (i + 1) % CP_EVERY == 0 {
            fs.cp()?;
        }
    }
    fs.cp()
}

/// The state after exactly `nops` acknowledged operations, committed.
fn reference_state(seed: u64, nops: usize) -> Wafl {
    let mut fs = build_base(seed);
    for i in 0..nops {
        apply_op(&mut fs, seed, i).expect("reference op");
        if (i + 1) % CP_EVERY == 0 {
            fs.cp().expect("reference cp");
        }
    }
    fs.cp().expect("reference final cp");
    fs
}

/// The fully mutated state every dump/restore cell starts from.
fn finished_state(seed: u64) -> Wafl {
    reference_state(seed, N_OPS)
}

/// Reboots a crashed filer: disarm the (dead) machine, rebuild the object
/// model from disk, replay NVRAM, and require a clean invariant check.
fn reboot(fs: Wafl) -> Wafl {
    crash::disarm();
    let (vol, nv) = fs.crash();
    let fs = Wafl::mount(
        vol,
        nv,
        WaflConfig::default(),
        Meter::new_shared(),
        CostModel::zero(),
    )
    .expect("remount after power loss");
    let report = check::check(&fs).expect("checker runs");
    assert!(
        report.is_clean(),
        "post-crash inconsistency: {:?}",
        report.problems
    );
    fs
}

/// Reads a whole stream back as records (framing included).
fn stream_records(media: &mut dyn Media) -> Vec<Record> {
    media.rewind();
    let mut out = Vec::new();
    loop {
        match media.read_record() {
            Ok(r) => out.push(r),
            Err(MediaError::EndOfData) => break,
            Err(e) => panic!("stream read failed: {e}"),
        }
    }
    out
}

/// Restartability clause: the resumed stream must be byte-identical to an
/// uninterrupted dump of the same (seeded) file system.
fn assert_stream_matches_uninterrupted(media: &mut dyn Media, reference: &mut dyn Media) {
    let resumed = stream_records(media);
    let uninterrupted = stream_records(reference);
    assert_eq!(
        resumed.len(),
        uninterrupted.len(),
        "resumed stream has a different record count than an uninterrupted dump"
    );
    for (i, (a, b)) in resumed.iter().zip(&uninterrupted).enumerate() {
        assert_eq!(a, b, "record {i} differs from the uninterrupted dump");
    }
}

/// Image-engine ground truth: the stream restores onto a raw volume that
/// carries every used block of the source, bit for bit.
fn assert_image_restores_exactly(fs: &mut Wafl, media: &mut dyn Media) -> u64 {
    let mut raw = Volume::new(geometry());
    let meter = Meter::new_shared();
    let out = image_restore(media, &mut raw, &meter, &CostModel::zero()).expect("image restore");
    let diffs = compare_used_blocks(fs, &mut raw).expect("block compare");
    assert!(
        diffs.is_empty(),
        "restored volume differs at blocks {diffs:?}"
    );
    out.blocks
}

/// Logical-engine ground truth: the stream restores into a fresh file
/// system whose tree (names, attrs, data, links) matches the source.
fn assert_logical_restores_exactly(fs: &mut Wafl, media: &mut dyn Media) -> u64 {
    let mut fs2 = Wafl::format(Volume::new(geometry()), WaflConfig::default()).expect("format");
    let out = restore(&mut fs2, media, "/").expect("logical restore");
    let diffs = compare_trees(fs, &mut fs2).expect("tree compare");
    assert!(diffs.is_empty(), "restored tree differs: {diffs:?}");
    out.files
}

/// Uninterrupted dump+restore round trip — used after mutation-phase
/// crashes to show the recovered filer is fully backupable.
fn verify_roundtrip(fs: &mut Wafl, kind: EngineKind) {
    let mut media = tape();
    match kind {
        EngineKind::Image => {
            image_dump_full(fs, &mut media, "post-crash").expect("image dump");
            assert_image_restores_exactly(fs, &mut media);
        }
        EngineKind::Logical => {
            let mut catalog = DumpCatalog::new();
            dump(fs, &mut media, &mut catalog, &DumpOptions::default()).expect("logical dump");
            assert_logical_restores_exactly(fs, &mut media);
        }
    }
}

// ---------------------------------------------------------------------------
// Cell drivers: one per crash-point class.
// ---------------------------------------------------------------------------

/// CpCommit / NvramFlush: power loss while the filer is absorbing a
/// seeded mutation stream. Checks the atomicity clause, then that the
/// recovered filer still backs up cleanly under `kind`.
fn mutation_cell(point: CrashPoint, kind: EngineKind, seed: u64) -> String {
    let mut rng = cell_rng(seed, point, kind);
    let plan = match point {
        CrashPoint::CpCommit => CrashPlan::new().trip_within(CrashPoint::CpCommit, 16, &mut rng),
        CrashPoint::NvramFlush => CrashPlan::new().trip_within(CrashPoint::NvramFlush, 4, &mut rng),
        other => panic!("not a mutation-phase point: {other}"),
    };

    let mut fs = build_base(seed);
    crash::arm(plan);
    let mut k = 0usize;
    let res = run_mutations(&mut fs, seed, &mut k);
    assert!(
        matches!(res, Err(WaflError::PowerLoss { .. })),
        "armed mutation run must die of power loss, got {res:?}"
    );
    assert_eq!(crash::tripped(), Some(point), "wrong point tripped");
    let hits = crash::hits(point);

    let mut fs = reboot(fs);

    // Atomicity: recovered state is exactly state_k (all acked ops) or
    // state_{k+1} (the in-flight op was already logged before the trip).
    let mut ref_k = reference_state(seed, k);
    let matched = if compare_trees(&mut fs, &mut ref_k)
        .expect("compare vs state_k")
        .is_empty()
    {
        "pre-op"
    } else {
        let mut ref_k1 = reference_state(seed, (k + 1).min(N_OPS));
        let diffs = compare_trees(&mut fs, &mut ref_k1).expect("compare vs state_k+1");
        assert!(
            diffs.is_empty(),
            "{point}/{} seed {seed}: recovered state is neither state_{k} \
             nor state_{}: {diffs:?}",
            kind.name(),
            k + 1
        );
        "post-op"
    };

    verify_roundtrip(&mut fs, kind);
    format!(
        "{point}/{} seed={seed} k={k} hits={hits} matched={matched}",
        kind.name()
    )
}

/// How many hits to let through before tripping a dump-phase point.
///
/// Lower bounds guarantee the first NVRAM checkpoint is already stored
/// when the power fails, so the second attempt resumes instead of
/// colliding with the first attempt's snapshot — the scenario a fresh
/// restart (operator wipes media + snapshot) would cover instead.
fn dump_trip_nth(point: CrashPoint, rng: &mut SimRng) -> u64 {
    match point {
        // Records stream after a header; checkpoints land every 2 records.
        CrashPoint::DumpRecord => 3 + rng.range(0, 4),
        // Fire n=1 precedes the very first checkpoint store.
        CrashPoint::DumpCheckpoint => 2 + rng.range(0, 2),
        // Sends: header records first, first checkpoint after send 3.
        CrashPoint::NetTransfer => 4 + rng.range(0, 4),
        other => panic!("not a dump-phase point: {other}"),
    }
}

/// DumpRecord / DumpCheckpoint / NetTransfer: power loss mid-dump. The
/// filer reboots, the NvScratch checkpoint survives, and the resumed run
/// completes a stream byte-identical to an uninterrupted dump.
fn dump_cell(point: CrashPoint, kind: EngineKind, seed: u64) -> String {
    let mut rng = cell_rng(seed, point, kind);
    let nth = dump_trip_nth(point, &mut rng);
    let over_net = point == CrashPoint::NetTransfer;

    let mut fs = finished_state(seed);
    let mut media: Box<dyn Media> = if over_net {
        Box::new(NetTarget::new(LinkSpec::gbit1()))
    } else {
        Box::new(tape())
    };
    let mut scratch = NvScratch::new();
    let mut catalog = DumpCatalog::new();

    crash::arm(CrashPlan::new().trip_at(point, nth));
    match kind {
        EngineKind::Image => {
            let job = RestartableImageDump::new("m").checkpoint_every(2);
            let err = job.run(&mut fs, &mut media, &mut scratch);
            assert!(err.is_err(), "armed image dump must fail, got {err:?}");
            assert_eq!(crash::tripped(), Some(point), "wrong point tripped");

            let mut fs = reboot(fs);
            let out = job
                .run(&mut fs, &mut media, &mut scratch)
                .expect("resumed image dump");
            assert!(out.resumed, "second attempt must resume from NVRAM");

            let mut ref_fs = finished_state(seed);
            let mut ref_media = tape();
            let mut ref_scratch = NvScratch::new();
            job.run(&mut ref_fs, &mut ref_media, &mut ref_scratch)
                .expect("reference image dump");
            assert_stream_matches_uninterrupted(&mut media, &mut ref_media);

            let blocks = assert_image_restores_exactly(&mut fs, &mut media);
            format!(
                "{point}/image seed={seed} nth={nth} records={} blocks={blocks}",
                media.total_records()
            )
        }
        EngineKind::Logical => {
            let job = RestartableLogicalDump::new(DumpOptions::default()).checkpoint_every(2);
            let err = job.run(&mut fs, &mut media, &mut catalog, &mut scratch);
            assert!(err.is_err(), "armed logical dump must fail, got {err:?}");
            assert_eq!(crash::tripped(), Some(point), "wrong point tripped");

            let mut fs = reboot(fs);
            job.run(&mut fs, &mut media, &mut catalog, &mut scratch)
                .expect("resumed logical dump");

            let mut ref_fs = finished_state(seed);
            let mut ref_media = tape();
            let mut ref_scratch = NvScratch::new();
            let mut ref_catalog = DumpCatalog::new();
            job.run(
                &mut ref_fs,
                &mut ref_media,
                &mut ref_catalog,
                &mut ref_scratch,
            )
            .expect("reference logical dump");
            assert_stream_matches_uninterrupted(&mut media, &mut ref_media);

            let files = assert_logical_restores_exactly(&mut fs, &mut media);
            format!(
                "{point}/logical seed={seed} nth={nth} records={} files={files}",
                media.total_records()
            )
        }
    }
}

/// Restore: power loss mid-restore. Recovery is rerunning the restore
/// (paper footnote 2) — onto the same raw volume for the image engine,
/// into the rebooted target filer for the logical engine.
fn restore_cell(kind: EngineKind, seed: u64) -> String {
    let mut rng = cell_rng(seed, CrashPoint::Restore, kind);
    let mut fs = finished_state(seed);
    let mut media = tape();
    match kind {
        EngineKind::Image => {
            image_dump_full(&mut fs, &mut media, "m").expect("image dump");
            let nth = 1 + rng.range(0, 6);
            let mut raw = Volume::new(geometry());
            let meter = Meter::new_shared();
            crash::arm(CrashPlan::new().trip_at(CrashPoint::Restore, nth));
            let err = image_restore(&mut media, &mut raw, &meter, &CostModel::zero());
            assert!(err.is_err(), "armed restore must fail, got {:?}", err.err());
            assert_eq!(crash::tripped(), Some(CrashPoint::Restore));
            crash::disarm();
            // Rerun the whole restore onto the partially written volume.
            let out = image_restore(&mut media, &mut raw, &meter, &CostModel::zero())
                .expect("restore rerun");
            let diffs = compare_used_blocks(&mut fs, &mut raw).expect("block compare");
            assert!(diffs.is_empty(), "rerun left differing blocks {diffs:?}");
            format!("restore/image seed={seed} nth={nth} blocks={}", out.blocks)
        }
        EngineKind::Logical => {
            let mut catalog = DumpCatalog::new();
            dump(&mut fs, &mut media, &mut catalog, &DumpOptions::default()).expect("logical dump");
            let nth = 1 + rng.range(0, 8);
            let mut fs2 =
                Wafl::format(Volume::new(geometry()), WaflConfig::default()).expect("format");
            crash::arm(CrashPlan::new().trip_at(CrashPoint::Restore, nth));
            let err = restore(&mut fs2, &mut media, "/");
            assert!(err.is_err(), "armed restore must fail, got {:?}", err.err());
            assert_eq!(crash::tripped(), Some(CrashPoint::Restore));
            // Reboot the half-restored target filer, then restart the
            // restore: reconciliation converges on the dumped tree.
            let mut fs2 = reboot(fs2);
            let out = restore(&mut fs2, &mut media, "/").expect("restore rerun");
            let diffs = compare_trees(&mut fs, &mut fs2).expect("tree compare");
            assert!(diffs.is_empty(), "rerun left a differing tree: {diffs:?}");
            format!("restore/logical seed={seed} nth={nth} files={}", out.files)
        }
    }
}

/// One matrix cell, dispatched by point class.
fn run_cell(point: CrashPoint, kind: EngineKind, seed: u64) -> String {
    let summary = match point {
        CrashPoint::CpCommit | CrashPoint::NvramFlush => mutation_cell(point, kind, seed),
        CrashPoint::DumpRecord | CrashPoint::DumpCheckpoint | CrashPoint::NetTransfer => {
            dump_cell(point, kind, seed)
        }
        CrashPoint::Restore => restore_cell(kind, seed),
        other => panic!("unhandled crash point {other}"),
    };
    crash::disarm();
    summary
}

// ---------------------------------------------------------------------------
// The matrix.
// ---------------------------------------------------------------------------

#[test]
fn cp_commit_cells() {
    for seed in 0..SEEDS {
        for kind in EngineKind::BOTH {
            run_cell(CrashPoint::CpCommit, kind, seed);
        }
    }
}

#[test]
fn nvram_flush_cells() {
    for seed in 0..SEEDS {
        for kind in EngineKind::BOTH {
            run_cell(CrashPoint::NvramFlush, kind, seed);
        }
    }
}

#[test]
fn dump_checkpoint_cells() {
    for seed in 0..SEEDS {
        for kind in EngineKind::BOTH {
            run_cell(CrashPoint::DumpCheckpoint, kind, seed);
        }
    }
}

#[test]
fn dump_record_cells() {
    for seed in 0..SEEDS {
        for kind in EngineKind::BOTH {
            run_cell(CrashPoint::DumpRecord, kind, seed);
        }
    }
}

#[test]
fn restore_cells() {
    for seed in 0..SEEDS {
        for kind in EngineKind::BOTH {
            run_cell(CrashPoint::Restore, kind, seed);
        }
    }
}

#[test]
fn net_transfer_cells() {
    for seed in 0..SEEDS {
        for kind in EngineKind::BOTH {
            run_cell(CrashPoint::NetTransfer, kind, seed);
        }
    }
}

/// Determinism clause: every cell class, rerun with the same seed,
/// reports the identical summary (same trip, same hit counts, same
/// recovered shape). Iterating `CrashPoint::ALL` also pins the matrix to
/// the full enumeration — adding a point without a cell driver panics.
#[test]
fn replay_is_deterministic_per_seed() {
    for point in CrashPoint::ALL {
        for kind in EngineKind::BOTH {
            let first = run_cell(point, kind, 3);
            let second = run_cell(point, kind, 3);
            assert_eq!(first, second, "cell is not deterministic for {point}");
        }
    }
}

/// A mid-sync power loss on the replication channel: the next `sync_via`
/// call starts a fresh session (channel truncated, new anchor snapshot)
/// and converges on a bit-exact mirror.
#[test]
fn mirror_sync_recovers_from_net_crash() {
    for seed in 0..4 {
        let mut src = finished_state(seed);
        let mut dst = Volume::new(geometry());
        let mut channel = NetTarget::new(LinkSpec::gbit1());
        let mut mirror = Mirror::new();
        let meter = Meter::new_shared();
        let mut rng = cell_rng(seed, CrashPoint::NetTransfer, EngineKind::Image);
        let nth = 2 + rng.range(0, 6);

        crash::arm(CrashPlan::new().trip_at(CrashPoint::NetTransfer, nth));
        let err = mirror.sync_via(&mut src, &mut dst, &meter, &CostModel::zero(), &mut channel);
        assert!(err.is_err(), "armed sync must fail, got {err:?}");
        assert_eq!(crash::tripped(), Some(CrashPoint::NetTransfer));
        crash::disarm();

        mirror
            .sync_via(&mut src, &mut dst, &meter, &CostModel::zero(), &mut channel)
            .expect("sync rerun");
        let diffs = compare_used_blocks(&mut src, &mut dst).expect("block compare");
        assert!(diffs.is_empty(), "mirror differs at blocks {diffs:?}");
    }
}

/// The crash subsystem surfaces its activity through `obs`: a trip bumps
/// `crash.trips` once (dead machines do not double-count), and the
/// recovering mount bumps `crash.replays` / `crash.replayed_ops`.
#[test]
fn crash_counters_surface_trips_and_replays() {
    let trips0 = obs::counter("crash.trips").get();
    let replays0 = obs::counter("crash.replays").get();
    let replayed0 = obs::counter("crash.replayed_ops").get();

    let mut fs = build_base(7);
    // Trip the very first consistency-point commit after arming: the ops
    // logged since the previous CP are in NVRAM and must be replayed.
    crash::arm(CrashPlan::new().trip_at(CrashPoint::CpCommit, 1));
    let mut k = 0usize;
    let res = run_mutations(&mut fs, 7, &mut k);
    assert!(res.is_err());
    let fs = reboot(fs);
    drop(fs);

    assert_eq!(
        obs::counter("crash.trips").get(),
        trips0 + 1,
        "one power loss = one trip, even though later fires hit a dead machine"
    );
    assert_eq!(obs::counter("crash.replays").get(), replays0 + 1);
    assert!(
        obs::counter("crash.replayed_ops").get() >= replayed0 + CP_EVERY as u64,
        "the ops logged before the tripped CP must all replay"
    );
}

/// Satellite regression: NvScratch checkpoint slots survive a *double*
/// crash — power loss during the resume of an already-crashed dump. The
/// third attempt still resumes from a live slot and completes a stream
/// byte-identical to an uninterrupted dump.
#[test]
fn nvscratch_slots_survive_double_crash() {
    for seed in 0..4u64 {
        for kind in EngineKind::BOTH {
            let mut rng = cell_rng(seed, CrashPoint::DumpRecord, kind);
            let nth1 = 3 + rng.range(0, 3);
            // Either re-trip before the resumed attempt checkpoints again
            // (attempt 3 reuses attempt 1's slot) or after (attempt 3 uses
            // attempt 2's newer slot) — both must recover.
            let nth2 = 1 + rng.range(0, 3);

            let mut fs = finished_state(seed);
            let mut media = tape();
            let mut scratch = NvScratch::new();
            let mut catalog = DumpCatalog::new();

            match kind {
                EngineKind::Image => {
                    let job = RestartableImageDump::new("m").checkpoint_every(2);
                    crash::arm(CrashPlan::new().trip_at(CrashPoint::DumpRecord, nth1));
                    assert!(job.run(&mut fs, &mut media, &mut scratch).is_err());
                    assert!(
                        scratch.load(job.scratch_key()).is_some(),
                        "first crash must leave a checkpoint slot"
                    );
                    let mut fs = reboot(fs);

                    crash::arm(CrashPlan::new().trip_at(CrashPoint::DumpRecord, nth2));
                    assert!(job.run(&mut fs, &mut media, &mut scratch).is_err());
                    assert!(
                        scratch.load(job.scratch_key()).is_some(),
                        "crash during resume must leave a checkpoint slot"
                    );
                    let mut fs = reboot(fs);

                    let out = job
                        .run(&mut fs, &mut media, &mut scratch)
                        .expect("third attempt completes");
                    assert!(out.resumed);
                    assert!(
                        scratch.load(job.scratch_key()).is_none(),
                        "a finished dump retires its slot"
                    );

                    let mut ref_fs = finished_state(seed);
                    let mut ref_media = tape();
                    let mut ref_scratch = NvScratch::new();
                    job.run(&mut ref_fs, &mut ref_media, &mut ref_scratch)
                        .expect("reference image dump");
                    assert_stream_matches_uninterrupted(&mut media, &mut ref_media);
                    assert_image_restores_exactly(&mut fs, &mut media);
                }
                EngineKind::Logical => {
                    let job =
                        RestartableLogicalDump::new(DumpOptions::default()).checkpoint_every(2);
                    let key = job.scratch_key();
                    crash::arm(CrashPlan::new().trip_at(CrashPoint::DumpRecord, nth1));
                    assert!(job
                        .run(&mut fs, &mut media, &mut catalog, &mut scratch)
                        .is_err());
                    assert!(
                        scratch.load(&key).is_some(),
                        "first crash must leave a checkpoint slot"
                    );
                    let mut fs = reboot(fs);

                    crash::arm(CrashPlan::new().trip_at(CrashPoint::DumpRecord, nth2));
                    assert!(job
                        .run(&mut fs, &mut media, &mut catalog, &mut scratch)
                        .is_err());
                    assert!(
                        scratch.load(&key).is_some(),
                        "crash during resume must leave a checkpoint slot"
                    );
                    let mut fs = reboot(fs);

                    job.run(&mut fs, &mut media, &mut catalog, &mut scratch)
                        .expect("third attempt completes");
                    assert!(
                        scratch.load(&key).is_none(),
                        "a finished dump retires its slot"
                    );

                    let mut ref_fs = finished_state(seed);
                    let mut ref_media = tape();
                    let mut ref_scratch = NvScratch::new();
                    let mut ref_catalog = DumpCatalog::new();
                    job.run(
                        &mut ref_fs,
                        &mut ref_media,
                        &mut ref_catalog,
                        &mut ref_scratch,
                    )
                    .expect("reference logical dump");
                    assert_stream_matches_uninterrupted(&mut media, &mut ref_media);
                    assert_logical_restores_exactly(&mut fs, &mut media);
                }
            }
            crash::disarm();
        }
    }
}
