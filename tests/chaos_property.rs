//! Chaos properties: any single injected fault under the default
//! [`RetryPolicy`] either retries through to a byte-identical verified
//! restore, or surfaces as a typed *permanent* [`BackupError`] — never a
//! silent corruption, never an unclassified failure. Plus the restart
//! discipline: an interrupted image dump resumes from its checkpoint
//! without re-reading a single finished block, while an interrupted
//! logical dump pays the paper's coarser restart (the map phases re-run).

use wafl_backup::backup_core::engine::BackupEngine;
use wafl_backup::backup_core::engine::LogicalEngine;
use wafl_backup::backup_core::engine::PhysicalEngine;
use wafl_backup::backup_core::physical::format::ImageError;
use wafl_backup::backup_core::verify::compare_used_blocks;
use wafl_backup::backup_core::ImageCheckpoint;
use wafl_backup::backup_core::LogicalCheckpoint;
use wafl_backup::prelude::*;
use wafl_backup::simkit::media::MediaError;
use wafl_backup::simkit::rng::SimRng;

fn geometry() -> VolumeGeometry {
    VolumeGeometry::uniform(2, 4, 4096, DiskPerf::ideal())
}

fn populated() -> Wafl {
    let mut fs = Wafl::format(Volume::new(geometry()), WaflConfig::default()).unwrap();
    let d = fs
        .create(INO_ROOT, "work", FileType::Dir, Attrs::default())
        .unwrap();
    for i in 0..20u64 {
        let f = fs
            .create(d, &format!("f{i}"), FileType::File, Attrs::default())
            .unwrap();
        for b in 0..12 {
            fs.write_fbn(f, b, Block::Synthetic(i * 31 + b)).unwrap();
        }
    }
    fs.cp().unwrap();
    fs
}

fn chaos_media(seed: u64, spec: &FaultSpec) -> RetryMedia<FaultProxy<TapeDrive>> {
    let proxy = FaultProxy::new(
        TapeDrive::new(TapePerf::ideal(), u64::MAX),
        &spec.tape,
        SimRng::seed_from_u64(seed),
    );
    RetryMedia::new(proxy, RetryPolicy::media_default())
}

/// The single-fault property over a seed matrix, for both strategies
/// driven through `Box<dyn BackupEngine>` (the trait stays object-safe
/// with `&mut dyn Media` operands).
#[test]
fn injected_faults_retry_to_verified_restore_or_fail_permanent() {
    for seed in 0..6u64 {
        let spec = FaultSpec::builder()
            .seed(seed)
            .tape_media_soft(0.05)
            .tape_stacker_jam(0.01)
            .tape_drive_offline(0.005, 2)
            .build();

        // Logical.
        let mut fs = populated();
        let mut media = chaos_media(seed, &spec);
        let mut engine: Box<dyn BackupEngine> =
            Box::new(LogicalEngine::new(DumpOptions::default()));
        match engine.dump(&mut fs, &mut media) {
            Ok(out) => {
                assert_eq!(out.files, 20);
                let mut target =
                    Wafl::format(Volume::new(geometry()), WaflConfig::default()).unwrap();
                match engine.restore(&mut target, &mut media) {
                    Ok(_) => {
                        let diffs = compare_trees(&mut fs, &mut target).unwrap();
                        assert!(diffs.is_empty(), "seed {seed}: diffs {diffs:?}");
                    }
                    Err(e) => assert!(!e.is_transient(), "seed {seed}: {e}"),
                }
            }
            Err(e) => assert!(!e.is_transient(), "seed {seed}: {e}"),
        }

        // Physical.
        let mut fs = populated();
        let mut media = chaos_media(seed ^ 0xdead, &spec);
        let mut engine: Box<dyn BackupEngine> = Box::new(PhysicalEngine::new("chaos"));
        match engine.dump(&mut fs, &mut media) {
            Ok(_) => {
                let mut target =
                    Wafl::format(Volume::new(geometry()), WaflConfig::default()).unwrap();
                match engine.restore(&mut target, &mut media) {
                    Ok(_) => {
                        let diffs = compare_used_blocks(&mut fs, target.volume_mut()).unwrap();
                        assert!(diffs.is_empty(), "seed {seed}: {} block diffs", diffs.len());
                    }
                    Err(e) => assert!(!e.is_transient(), "seed {seed}: {e}"),
                }
            }
            Err(e) => assert!(!e.is_transient(), "seed {seed}: {e}"),
        }
    }
}

/// Same seed and spec ⇒ identical retries, identical stream, identical
/// outcome. The whole chaos pipeline is a pure function of the seed.
#[test]
fn chaos_runs_are_deterministic_per_seed() {
    let spec = FaultSpec::builder()
        .seed(17)
        .tape_media_soft(0.08)
        .tape_stacker_jam(0.02)
        .build();
    let run = || {
        let mut fs = populated();
        let mut media = chaos_media(17, &spec);
        let mut engine = LogicalEngine::new(DumpOptions::default());
        let out = engine.dump(&mut fs, &mut media).expect("dump under chaos");
        (
            out.retries,
            out.tape_bytes,
            media.retries(),
            media.total_records(),
            media.total_bytes(),
        )
    };
    assert_eq!(run(), run(), "same seed must replay bit-for-bit");
}

/// A RAID member dies *while the dump is running*: degraded reads keep
/// the dump alive, the outcome is flagged, and the restore verifies.
#[test]
fn raid_member_failure_mid_dump_degrades_but_completes() {
    let mut fs = populated();
    let spec = FaultSpec::builder()
        .seed(9)
        .raid_fail_disk_after(200)
        .build();
    fs.volume_mut().arm_faults(&spec);
    fs.volume_mut()
        .set_retry_policy(RetryPolicy::media_default());

    let mut tape = TapeDrive::new(TapePerf::ideal(), u64::MAX);
    let mut engine = PhysicalEngine::new("deg");
    let out = engine.dump(&mut fs, &mut tape).expect("degraded dump");
    assert!(out.degraded, "a member failed mid-dump");
    assert!(
        obs::counter("raid.degraded_reads").get() > 0,
        "degraded reads must be visible in obs"
    );
    assert!(!fs.volume().is_healthy());

    let mut target = Wafl::format(Volume::new(geometry()), WaflConfig::default()).unwrap();
    engine
        .restore(&mut target, &mut tape)
        .expect("restore from degraded dump");
    let diffs = compare_used_blocks(&mut fs, target.volume_mut()).unwrap();
    assert!(diffs.is_empty(), "{} block diffs", diffs.len());
}

/// The image restart contract: resume re-reads **zero** completed blocks
/// (flat positional checkpoint) and the restored volume is byte-identical
/// to an uninterrupted dump's.
#[test]
fn interrupted_image_dump_resumes_without_rereading_finished_blocks() {
    let mut fs = populated();
    let total_used: u64 = (0..fs.blkmap().nblocks())
        .filter(|&b| !fs.blkmap().is_free(b))
        .count() as u64;

    // A permanent write defect mid-stream kills the first attempt.
    let spec = FaultSpec::builder().tape_hard_write_record(6).build();
    let mut media = FaultProxy::new(
        TapeDrive::new(TapePerf::ideal(), u64::MAX),
        &spec.tape,
        SimRng::seed_from_u64(1),
    );
    let mut scratch = NvScratch::new();
    let job = RestartableImageDump::new("ckpt").checkpoint_every(2);
    let err = job.run(&mut fs, &mut media, &mut scratch).unwrap_err();
    assert!(
        matches!(err, ImageError::Media(MediaError::Hard { .. })),
        "typed permanent media error, got {err:?}"
    );

    // The checkpoint survived the failure and points mid-stream.
    let c = ImageCheckpoint::from_bytes(scratch.load(job.scratch_key()).unwrap()).unwrap();
    assert!(c.next_block > 0 && c.next_block < total_used);
    assert_eq!(c.snapshot, "ckpt");

    // Swap the defective cartridge (clear the fault) and resume.
    media.disarm();
    let reads_before = fs.volume().data_stats().reads().ops;
    let out = job.run(&mut fs, &mut media, &mut scratch).unwrap();
    assert!(out.resumed);
    // Every block the resume shipped was read exactly once: zero re-reads
    // of blocks completed before the checkpoint.
    let resume_reads = fs.volume().data_stats().reads().ops - reads_before;
    assert_eq!(
        resume_reads, out.blocks,
        "resume must not re-read finished blocks"
    );
    assert!(
        out.blocks < total_used,
        "resume skipped the finished prefix"
    );
    assert!(
        scratch.load(job.scratch_key()).is_none(),
        "checkpoint retires on success"
    );

    // The resumed stream restores a byte-identical volume.
    let mut raw = Volume::new(geometry());
    image_restore(
        &mut media,
        &mut raw,
        &Meter::new_shared(),
        &CostModel::zero(),
    )
    .unwrap();
    let diffs = compare_used_blocks(&mut fs, &mut raw).unwrap();
    assert!(diffs.is_empty(), "{} block diffs after resume", diffs.len());
}

/// The logical restart contract (the paper's coarser one): the resume
/// re-runs the map phases, skips completed files by inode watermark, and
/// still produces a stream that restores identically.
#[test]
fn interrupted_logical_dump_resumes_and_rereads_map_phases() {
    let mut fs = populated();
    let spec = FaultSpec::builder().tape_hard_write_record(30).build();
    let mut media = FaultProxy::new(
        TapeDrive::new(TapePerf::ideal(), u64::MAX),
        &spec.tape,
        SimRng::seed_from_u64(2),
    );
    let mut catalog = DumpCatalog::new();
    let mut scratch = NvScratch::new();
    let job = RestartableLogicalDump::new(DumpOptions::default());
    job.run(&mut fs, &mut media, &mut catalog, &mut scratch)
        .unwrap_err();

    let c = LogicalCheckpoint::from_bytes(scratch.load(&job.scratch_key()).unwrap()).unwrap();
    assert!(c.phase == 3 || c.phase == 4, "phase {}", c.phase);

    media.disarm();
    let out = job
        .run(&mut fs, &mut media, &mut catalog, &mut scratch)
        .unwrap();
    assert_eq!(obs::counter("backup.resumes").get(), 1);
    // The coarse restart re-runs the map phases every time.
    assert!(
        out.profiler
            .stages()
            .iter()
            .any(|s| s.name == "mapping files and directories"),
        "resume must re-run the map phases"
    );
    assert!(
        scratch.load(&job.scratch_key()).is_none(),
        "checkpoint retires on success"
    );

    let mut target = Wafl::format(Volume::new(geometry()), WaflConfig::default()).unwrap();
    restore(&mut target, &mut media, "/").unwrap();
    let diffs = compare_trees(&mut fs, &mut target).unwrap();
    assert!(diffs.is_empty(), "diffs after logical resume: {diffs:?}");
}
