//! Faults during backup operations: the backup path must survive what the
//! storage stack is designed to survive.

use wafl_backup::nvram;
use wafl_backup::prelude::*;

fn geometry() -> VolumeGeometry {
    VolumeGeometry::uniform(2, 4, 4096, DiskPerf::ideal())
}

fn populated() -> Wafl {
    let mut fs = Wafl::format(Volume::new(geometry()), WaflConfig::default()).unwrap();
    let d = fs
        .create(INO_ROOT, "work", FileType::Dir, Attrs::default())
        .unwrap();
    for i in 0..20u64 {
        let f = fs
            .create(d, &format!("f{i}"), FileType::File, Attrs::default())
            .unwrap();
        for b in 0..12 {
            fs.write_fbn(f, b, Block::Synthetic(i * 31 + b)).unwrap();
        }
    }
    fs.cp().unwrap();
    fs
}

#[test]
fn logical_dump_completes_on_a_degraded_raid_group() {
    let mut fs = populated();
    // One spindle dies before the nightly dump.
    fs.volume_mut().group_mut(0).unwrap().fail_disk(1).unwrap();
    assert!(!fs.volume().is_healthy());

    let mut tape = TapeDrive::new(TapePerf::ideal(), u64::MAX);
    let mut catalog = DumpCatalog::new();
    let out = dump(&mut fs, &mut tape, &mut catalog, &DumpOptions::default()).unwrap();
    assert_eq!(out.files, 20);

    // The degraded-mode dump restores perfectly.
    let mut restored = Wafl::format(Volume::new(geometry()), WaflConfig::default()).unwrap();
    let res = restore(&mut restored, &mut tape, "/").unwrap();
    assert!(res.warnings.is_empty(), "{:?}", res.warnings);
    let diffs = compare_trees(&mut fs, &mut restored).unwrap();
    assert!(diffs.is_empty(), "diffs: {diffs:?}");
}

#[test]
fn image_dump_completes_on_a_degraded_raid_group() {
    let mut fs = populated();
    fs.volume_mut().group_mut(1).unwrap().fail_disk(0).unwrap();

    let mut tape = TapeDrive::new(TapePerf::ideal(), u64::MAX);
    image_dump_full(&mut fs, &mut tape, "degraded").unwrap();

    let meter = Meter::new_shared();
    let mut raw = Volume::new(geometry());
    image_restore(&mut tape, &mut raw, &meter, &CostModel::zero()).unwrap();
    let mut restored = Wafl::mount(
        raw,
        nvram::NvramLog::new(32 << 20),
        WaflConfig::default(),
        Meter::new_shared(),
        CostModel::zero(),
    )
    .unwrap();
    let diffs = compare_trees(&mut fs, &mut restored).unwrap();
    assert!(diffs.is_empty(), "diffs: {diffs:?}");
    // And the restored volume is healthy even though the source wasn't.
    assert!(restored.volume().is_healthy());
}

#[test]
fn restore_interrupted_by_crash_can_rerun() {
    // Paper footnote 2: "it is simple to restart a restore which is
    // interrupted by a crash."
    let mut src = populated();
    let mut tape = TapeDrive::new(TapePerf::ideal(), u64::MAX);
    let mut catalog = DumpCatalog::new();
    dump(&mut src, &mut tape, &mut catalog, &DumpOptions::default()).unwrap();

    // First restore attempt "crashes" partway: simulate by restoring into
    // a target, crashing it without a final CP, and remounting.
    let mut target = Wafl::format(Volume::new(geometry()), WaflConfig::default()).unwrap();
    restore(&mut target, &mut tape, "/").unwrap();
    let (vol, mut nv) = target.crash();
    nv.drain_for_replay(); // NVRAM also lost
    let mut target = Wafl::mount(
        vol,
        nv,
        WaflConfig::default(),
        Meter::new_shared(),
        CostModel::zero(),
    )
    .unwrap();

    // Re-run the whole restore over whatever state survived; incremental
    // reconciliation makes this idempotent.
    restore(&mut target, &mut tape, "/").unwrap();
    let diffs = compare_trees(&mut src, &mut target).unwrap();
    assert!(diffs.is_empty(), "diffs after re-run: {diffs:?}");
}

#[test]
fn scrub_validates_parity_after_heavy_backup_traffic() {
    let mut fs = populated();
    let mut tape = TapeDrive::new(TapePerf::ideal(), u64::MAX);
    image_dump_full(&mut fs, &mut tape, "s").unwrap();
    let mut catalog = DumpCatalog::new();
    dump(&mut fs, &mut tape, &mut catalog, &DumpOptions::default()).unwrap();
    fs.cp().unwrap();
    for g in 0..fs.volume().ngroups() {
        let bad = fs.volume_mut().group_mut(g).unwrap().scrub().unwrap();
        assert_eq!(bad, 0, "parity errors in group {g}");
    }
}
