//! Whole-stack integration: workload generation → both backup strategies
//! → restore → verification, across every crate at once.

use wafl_backup::nvram;
use wafl_backup::prelude::*;
use wafl_backup::workload;

use workload::age::age;
use workload::age::AgingOptions;
use workload::churn::churn;
use workload::churn::ChurnOptions;
use workload::populate::populate;
use workload::profile::VolumeProfile;

fn build_tiny() -> (Wafl, VolumeProfile) {
    let profile = VolumeProfile::tiny();
    let (mut fs, _) = populate(&profile, 2026, Meter::new_shared(), CostModel::zero()).unwrap();
    age(&mut fs, &profile, &AgingOptions::from_profile(&profile), 7).unwrap();
    (fs, profile)
}

#[test]
fn both_strategies_round_trip_an_aged_workload_volume() {
    let (mut src, profile) = build_tiny();

    // Logical.
    let mut ltape = TapeDrive::new(TapePerf::ideal(), u64::MAX);
    let mut catalog = DumpCatalog::new();
    let lout = dump(&mut src, &mut ltape, &mut catalog, &DumpOptions::default()).unwrap();
    assert!(lout.files > 100, "workload too small: {} files", lout.files);
    let mut lrestored =
        Wafl::format(Volume::new(profile.geometry.clone()), WaflConfig::default()).unwrap();
    let lres = restore(&mut lrestored, &mut ltape, "/").unwrap();
    assert!(lres.warnings.is_empty(), "{:?}", lres.warnings);

    // Physical.
    let mut ptape = TapeDrive::new(TapePerf::ideal(), u64::MAX);
    image_dump_full(&mut src, &mut ptape, "e2e").unwrap();
    let meter = Meter::new_shared();
    let mut raw = Volume::new(profile.geometry.clone());
    image_restore(&mut ptape, &mut raw, &meter, &CostModel::zero()).unwrap();
    let mut prestored = Wafl::mount(
        raw,
        nvram::NvramLog::new(32 << 20),
        WaflConfig::default(),
        Meter::new_shared(),
        CostModel::zero(),
    )
    .unwrap();

    // Both restores equal the source — and therefore each other.
    let diffs = compare_trees(&mut src, &mut lrestored).unwrap();
    assert!(diffs.is_empty(), "logical: {diffs:?}");
    let diffs = compare_trees(&mut src, &mut prestored).unwrap();
    assert!(diffs.is_empty(), "physical: {diffs:?}");
    // The physical restore also carries the qtree configuration.
    assert_eq!(prestored.qtrees().len(), src.qtrees().len());

    // Every volume passes the full consistency check, including the
    // snapshot bit-plane invariants.
    for (label, fs) in [
        ("source", &mut src),
        ("logical restore", &mut lrestored),
        ("physical restore", &mut prestored),
    ] {
        fs.cp().unwrap();
        let report = wafl_backup::wafl::check::check(fs).unwrap();
        assert!(report.is_clean(), "{label}: {:?}", report.problems);
    }
}

#[test]
fn snapshot_plane_invariants_survive_a_dump_cycle() {
    // Dumps create and delete their own snapshots; rotations layer more
    // on top. The block map's bit planes must satisfy the paper's Table 1
    // set-difference arithmetic throughout, and deleted snapshots must
    // leave empty planes behind.
    let (mut src, profile) = build_tiny();
    let mut catalog = DumpCatalog::new();

    src.snapshot_create("keep.0").unwrap();
    churn(&mut src, &profile, &ChurnOptions::default(), 41).unwrap();
    src.snapshot_create("keep.1").unwrap();

    let mut tape = TapeDrive::new(TapePerf::ideal(), u64::MAX);
    dump(&mut src, &mut tape, &mut catalog, &DumpOptions::default()).unwrap();

    src.cp().unwrap();
    let report = wafl_backup::wafl::check::check(&src).unwrap();
    assert!(report.is_clean(), "after dump: {:?}", report.problems);

    // Drop the older snapshot: its plane must come back empty, and the
    // remaining planes must still satisfy the arithmetic.
    let id = src.snapshot_by_name("keep.0").unwrap().id;
    src.snapshot_delete(id).unwrap();
    src.cp().unwrap();
    assert_eq!(src.blkmap().count_plane(id), 0, "deleted plane not empty");
    let report = wafl_backup::wafl::check::check(&src).unwrap();
    assert!(report.is_clean(), "after delete: {:?}", report.problems);
}

#[test]
fn incremental_cycle_with_churn_converges() {
    let (mut src, profile) = build_tiny();
    let mut catalog = DumpCatalog::new();

    let mut tape0 = TapeDrive::new(TapePerf::ideal(), u64::MAX);
    dump(&mut src, &mut tape0, &mut catalog, &DumpOptions::default()).unwrap();

    // Churn, then two incremental levels.
    churn(&mut src, &profile, &ChurnOptions::default(), 31).unwrap();
    let mut tape1 = TapeDrive::new(TapePerf::ideal(), u64::MAX);
    dump(
        &mut src,
        &mut tape1,
        &mut catalog,
        &DumpOptions {
            level: 1,
            ..DumpOptions::default()
        },
    )
    .unwrap();
    churn(&mut src, &profile, &ChurnOptions::default(), 32).unwrap();
    let mut tape2 = TapeDrive::new(TapePerf::ideal(), u64::MAX);
    let out2 = dump(
        &mut src,
        &mut tape2,
        &mut catalog,
        &DumpOptions {
            level: 2,
            ..DumpOptions::default()
        },
    )
    .unwrap();
    // Level 2 bases on level 1: much smaller than a full.
    let full_blocks = src.active_blocks();
    assert!(out2.data_blocks < full_blocks / 2);

    let mut restored =
        Wafl::format(Volume::new(profile.geometry.clone()), WaflConfig::default()).unwrap();
    restore(&mut restored, &mut tape0, "/").unwrap();
    restore(&mut restored, &mut tape1, "/").unwrap();
    restore(&mut restored, &mut tape2, "/").unwrap();
    let diffs = compare_trees(&mut src, &mut restored).unwrap();
    assert!(diffs.is_empty(), "chain diverged: {diffs:?}");
}

#[test]
fn physical_incrementals_track_logical_churn() {
    let (mut src, profile) = build_tiny();
    let mut tape0 = TapeDrive::new(TapePerf::ideal(), u64::MAX);
    let full = image_dump_full(&mut src, &mut tape0, "base").unwrap();

    churn(&mut src, &profile, &ChurnOptions::default(), 77).unwrap();
    let mut tape1 = TapeDrive::new(TapePerf::ideal(), u64::MAX);
    let incr = image_dump_incremental(&mut src, &mut tape1, "base", "incr").unwrap();
    assert!(
        incr.blocks < full.blocks / 2,
        "incremental {} vs full {}",
        incr.blocks,
        full.blocks
    );

    let meter = Meter::new_shared();
    let mut raw = Volume::new(profile.geometry.clone());
    image_restore(&mut tape0, &mut raw, &meter, &CostModel::zero()).unwrap();
    image_restore(&mut tape1, &mut raw, &meter, &CostModel::zero()).unwrap();
    let mut restored = Wafl::mount(
        raw,
        nvram::NvramLog::new(32 << 20),
        WaflConfig::default(),
        Meter::new_shared(),
        CostModel::zero(),
    )
    .unwrap();
    let diffs = compare_trees(&mut src, &mut restored).unwrap();
    assert!(diffs.is_empty(), "diffs: {diffs:?}");
}

#[test]
fn parallel_qtree_dumps_equal_a_whole_volume_dump() {
    let (mut src, profile) = build_tiny();
    let mut catalog = DumpCatalog::new();

    // Whole-volume restore target.
    let mut whole =
        Wafl::format(Volume::new(profile.geometry.clone()), WaflConfig::default()).unwrap();
    let mut tape = TapeDrive::new(TapePerf::ideal(), u64::MAX);
    dump(&mut src, &mut tape, &mut catalog, &DumpOptions::default()).unwrap();
    restore(&mut whole, &mut tape, "/").unwrap();

    // Per-qtree dumps restored into a second target.
    let mut pieced =
        Wafl::format(Volume::new(profile.geometry.clone()), WaflConfig::default()).unwrap();
    let qtree_paths: Vec<String> = src
        .qtrees()
        .iter()
        .map(|q| format!("/{}", q.name))
        .collect();
    assert!(!qtree_paths.is_empty());
    for q in &qtree_paths {
        let mut qtape = TapeDrive::new(TapePerf::ideal(), u64::MAX);
        dump(
            &mut src,
            &mut qtape,
            &mut catalog,
            &DumpOptions {
                subtree: q.clone(),
                ..DumpOptions::default()
            },
        )
        .unwrap();
        let root = wafl_backup::wafl::types::INO_ROOT;
        let name = q.trim_start_matches('/');
        pieced
            .create(root, name, FileType::Dir, Attrs::default())
            .unwrap();
        restore(&mut pieced, &mut qtape, q).unwrap();
    }
    let diffs = compare_trees(&mut whole, &mut pieced).unwrap();
    // Qtree subtree dumps re-apply the qtree dirs' attrs; contents must be
    // identical.
    assert!(diffs.is_empty(), "diffs: {diffs:?}");
}
