//! A week of operator life: the classic dump-level rotation (full on
//! Sunday, level 1 mid-week, level 2 daily) over a churning file system,
//! then a full disaster restore replaying the chain — including the
//! deletions and renames the used-inode map exists to catch.
//!
//! This is also the paper's "makeshift HSM" pattern (§1): the same streams
//! could land on a cheaper filer instead of tape.
//!
//! Run with: `cargo run --example nightly_backups`

use wafl_backup::prelude::*;
use wafl_backup::simkit::rng::SimRng;

fn geometry() -> VolumeGeometry {
    VolumeGeometry::uniform(1, 6, 4096, DiskPerf::ideal())
}

/// One business day of changes.
fn business_day(fs: &mut Wafl, rng: &mut SimRng, day: u64) {
    let dir = fs.namei("/projects").unwrap();
    // New work.
    for i in 0..5 {
        let f = fs
            .create(
                dir,
                &format!("day{day}-doc{i}"),
                FileType::File,
                Attrs::default(),
            )
            .unwrap();
        for b in 0..rng.range(1, 8) {
            fs.write_fbn(f, b, Block::Synthetic(rng.next_u64()))
                .unwrap();
        }
    }
    // Edits to existing files.
    let entries = fs.readdir(dir).unwrap();
    for (name, ino) in &entries {
        if fs.stat(*ino).unwrap().ftype == FileType::File && rng.chance(0.3) {
            fs.write_fbn(*ino, 0, Block::Synthetic(rng.next_u64()))
                .unwrap();
        }
        // The occasional cleanup — old docs and the odd base file go.
        if (name.contains("doc0") && rng.chance(0.5))
            || (name.starts_with("base") && rng.chance(0.1))
        {
            fs.remove(dir, name).unwrap();
        }
    }
}

fn main() {
    let mut fs = Wafl::format(Volume::new(geometry()), WaflConfig::default()).expect("format");
    let mut rng = SimRng::seed_from_u64(1999);
    let mut catalog = DumpCatalog::new();

    // Initial state.
    let projects = fs
        .create(INO_ROOT, "projects", FileType::Dir, Attrs::default())
        .unwrap();
    for i in 0..15u64 {
        let f = fs
            .create(
                projects,
                &format!("base{i}"),
                FileType::File,
                Attrs::default(),
            )
            .unwrap();
        for b in 0..10 {
            fs.write_fbn(f, b, Block::Synthetic(i * 50 + b)).unwrap();
        }
    }

    // The rotation: Sunday full (0), Wednesday level 1, dailies level 2.
    let schedule: &[(&str, u8)] = &[
        ("sunday", 0),
        ("monday", 2),
        ("tuesday", 2),
        ("wednesday", 1),
        ("thursday", 2),
        ("friday", 2),
    ];
    let mut tapes: Vec<(String, u8, TapeDrive)> = Vec::new();
    for (i, (day, level)) in schedule.iter().enumerate() {
        if i > 0 {
            business_day(&mut fs, &mut rng, i as u64);
        }
        let mut tape = TapeDrive::new(TapePerf::dlt7000(), 1 << 30);
        let out = dump(
            &mut fs,
            &mut tape,
            &mut catalog,
            &DumpOptions {
                level: *level,
                ..DumpOptions::default()
            },
        )
        .expect("nightly dump");
        // The operator verifies every tape before trusting it (the paper's
        // unreadable-tape horror stories).
        let verdict = wafl_backup::backup_core::logical::toc::verify_stream(&mut tape)
            .expect("verification pass");
        assert!(
            verdict.is_clean(),
            "tape failed verification: {:?}",
            verdict.problems
        );
        println!(
            "{day:<10} level {level}: {:>3} files, {:>4} blocks, {:>9} on tape (verified)",
            out.files,
            out.data_blocks,
            simkit::units::fmt_bytes(out.tape_bytes)
        );
        tapes.push((day.to_string(), *level, tape));
    }

    // Saturday: the volume is lost. Restore = last full, then the most
    // recent chain at each level: sunday(0) -> wednesday(1) -> thursday,
    // friday(2)? No — each level-2 bases on wednesday's level 1, so only
    // the LAST level-2 is needed after wednesday.
    println!("\nrestoring: sunday (full) + wednesday (level 1) + friday (level 2)");
    let mut recovered = Wafl::format(Volume::new(geometry()), WaflConfig::default()).unwrap();
    for want in ["sunday", "wednesday", "friday"] {
        let (_, _, tape) = tapes.iter_mut().find(|(d, _, _)| d == want).unwrap();
        let out = restore(&mut recovered, tape, "/").expect("restore");
        println!(
            "  applied {want}: +{} files, {} deletions reconciled",
            out.files, out.deleted
        );
    }

    let diffs = compare_trees(&mut fs, &mut recovered).expect("verify");
    assert!(diffs.is_empty(), "chain restore diverged: {diffs:?}");
    println!("\nweek restored exactly — moves, deletes and edits all reconciled");
}

use wafl_backup::simkit;
