//! Volume mirroring (paper §6): "The image dump/restore technology also
//! has potential application to remote mirroring and replication of
//! volumes." A mirror target is kept in sync with cheap incremental image
//! transfers; after every sync it mounts as an exact read-only replica.
//!
//! Run with: `cargo run --example mirroring`

use wafl_backup::nvram;
use wafl_backup::prelude::*;

fn geometry() -> VolumeGeometry {
    VolumeGeometry::uniform(1, 6, 4096, DiskPerf::ideal())
}

/// Mounts a copy of the target so the original keeps receiving syncs.
fn mount_replica(target: &mut Volume) -> Wafl {
    let mut copy = Volume::new(target.geometry().clone());
    for bno in 0..target.capacity() {
        let b = target.read_block(bno).unwrap();
        copy.write_block(bno, b).unwrap();
    }
    copy.sync().unwrap();
    Wafl::mount(
        copy,
        nvram::NvramLog::new(32 << 20),
        WaflConfig::default(),
        Meter::new_shared(),
        CostModel::zero(),
    )
    .expect("replica mounts")
}

fn main() {
    let mut primary = Wafl::format(Volume::new(geometry()), WaflConfig::default()).expect("format");
    let mut target = Volume::new(geometry());
    let meter = Meter::new_shared();
    let costs = CostModel::zero();
    let mut mirror = Mirror::new();

    // Seed the primary.
    let d = primary
        .create(INO_ROOT, "db", FileType::Dir, Attrs::default())
        .unwrap();
    for i in 0..20u64 {
        let f = primary
            .create(d, &format!("table{i}"), FileType::File, Attrs::default())
            .unwrap();
        for b in 0..25 {
            primary
                .write_fbn(f, b, Block::Synthetic(i * 1000 + b))
                .unwrap();
        }
    }

    // Initial transfer ships the whole used set.
    let first = mirror
        .sync(&mut primary, &mut target, &meter, &costs)
        .expect("initial sync");
    println!(
        "initial mirror transfer: {} blocks ({})",
        first.blocks,
        simkit::units::fmt_bytes(first.bytes)
    );
    {
        let mut replica = mount_replica(&mut target);
        let diffs = compare_trees(&mut primary, &mut replica).expect("verify");
        assert!(diffs.is_empty());
        println!("replica verified identical after initial sync");
    }

    // A few "days" of small changes, each followed by a sync: the deltas
    // stay proportional to the churn, not the volume.
    for day in 1..=3u64 {
        let f = primary.namei("/db/table0").unwrap();
        primary
            .write_fbn(f, day, Block::Synthetic(70_000 + day))
            .unwrap();
        let newf = primary
            .create(
                d,
                &format!("log.day{day}"),
                FileType::File,
                Attrs::default(),
            )
            .unwrap();
        primary
            .write_fbn(newf, 0, Block::Synthetic(80_000 + day))
            .unwrap();

        let sync = mirror
            .sync(&mut primary, &mut target, &meter, &costs)
            .expect("sync");
        println!(
            "day {day}: shipped {} blocks ({:.1}% of the initial transfer)",
            sync.blocks,
            sync.blocks as f64 / first.blocks as f64 * 100.0
        );
        assert!(sync.blocks < first.blocks / 2, "delta should stay small");

        let mut replica = mount_replica(&mut target);
        let diffs = compare_trees(&mut primary, &mut replica).expect("verify");
        assert!(diffs.is_empty(), "replica diverged on day {day}: {diffs:?}");
    }

    println!(
        "\nmirroring complete — anchor snapshot on the primary: {:?}",
        mirror.anchor().unwrap()
    );
}

use wafl_backup::simkit;
