//! Quickstart: format a filer, write data, snapshot, dump both ways,
//! restore both ways, and verify everything matches.
//!
//! Run with: `cargo run --example quickstart`

use wafl_backup::prelude::*;

fn geometry() -> VolumeGeometry {
    // A toy filer: one RAID-4 group of 4 data disks + parity.
    VolumeGeometry::uniform(1, 4, 4096, DiskPerf::ideal())
}

fn main() {
    // 1. Format.
    let mut fs = Wafl::format(Volume::new(geometry()), WaflConfig::default()).expect("format");
    println!("formatted a {}-block volume", fs.blkmap().nblocks());

    // 2. Populate a little tree.
    let docs = fs
        .create(INO_ROOT, "docs", FileType::Dir, Attrs::default())
        .unwrap();
    let paper = fs
        .create(docs, "osdi99.tex", FileType::File, Attrs::default())
        .unwrap();
    for fbn in 0..32 {
        fs.write_fbn(paper, fbn, Block::Synthetic(1000 + fbn))
            .unwrap();
    }
    fs.set_attrs(
        paper,
        Attrs {
            perm: 0o644,
            uid: 1001,
            dos_name: Some("OSDI99~1.TEX".into()),
            nt_acl: Some(vec![1, 2, 3]),
            ..Attrs::default()
        },
    )
    .unwrap();
    println!("wrote /docs/osdi99.tex (32 blocks, DOS name + NT ACL attached)");

    // 3. Snapshot: a free, instant, read-only copy.
    let free_before = fs.free_blocks();
    fs.snapshot_create("hourly.0").expect("snapshot");
    println!(
        "snapshot 'hourly.0' created; it consumed {} data blocks",
        free_before.saturating_sub(fs.free_blocks())
    );

    // 4. Logical dump to tape, restore to a second filer, verify.
    let mut tape = TapeDrive::new(TapePerf::dlt7000(), 1 << 30);
    let mut catalog = DumpCatalog::new();
    let out = dump(&mut fs, &mut tape, &mut catalog, &DumpOptions::default()).expect("dump");
    println!(
        "logical dump: {} files, {} dirs, {} data blocks, {} on tape",
        out.files,
        out.dirs,
        out.data_blocks,
        simkit::units::fmt_bytes(out.tape_bytes)
    );
    let mut restored = Wafl::format(Volume::new(geometry()), WaflConfig::default()).unwrap();
    restore(&mut restored, &mut tape, "/").expect("restore");
    let diffs = compare_trees(&mut fs, &mut restored).expect("verify");
    assert!(diffs.is_empty(), "logical restore diverged: {diffs:?}");
    println!("logical restore verified: tree, data, and multiprotocol attrs identical");

    // 5. Physical (image) dump, restore onto a fresh volume, mount, verify.
    let mut image_tape = TapeDrive::new(TapePerf::dlt7000(), 1 << 30);
    let img = image_dump_full(&mut fs, &mut image_tape, "weekly.0").expect("image dump");
    println!(
        "image dump: {} blocks ({}) — snapshots ride along for free",
        img.blocks,
        simkit::units::fmt_bytes(img.tape_bytes)
    );
    let meter = Meter::new_shared();
    let mut raw = Volume::new(geometry());
    image_restore(&mut image_tape, &mut raw, &meter, &CostModel::zero()).expect("image restore");
    let mut cloned = Wafl::mount(
        raw,
        nvram::NvramLog::new(32 << 20),
        WaflConfig::default(),
        Meter::new_shared(),
        CostModel::zero(),
    )
    .expect("restored volume mounts");
    assert!(cloned.snapshot_by_name("hourly.0").is_some());
    let diffs = compare_trees(&mut fs, &mut cloned).expect("verify");
    assert!(diffs.is_empty(), "image restore diverged: {diffs:?}");
    println!("image restore verified: bit-identical volume, snapshots included");

    println!("\nquickstart complete — both strategies round-tripped the filer");
}

use wafl_backup::nvram;
use wafl_backup::simkit;
