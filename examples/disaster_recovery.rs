//! Disaster recovery (paper §1/§4): full-volume loss, recovered from a
//! full image dump plus incrementals — with a RAID single-disk failure
//! weathered along the way.
//!
//! Run with: `cargo run --example disaster_recovery`

use wafl_backup::nvram;
use wafl_backup::prelude::*;

fn geometry() -> VolumeGeometry {
    VolumeGeometry::uniform(2, 4, 4096, DiskPerf::ideal())
}

fn main() {
    let mut fs = Wafl::format(Volume::new(geometry()), WaflConfig::default()).expect("format");
    let meter = Meter::new_shared();

    // Production data.
    let data = fs
        .create(INO_ROOT, "data", FileType::Dir, Attrs::default())
        .unwrap();
    for i in 0..30u64 {
        let f = fs
            .create(
                data,
                &format!("record{i:02}"),
                FileType::File,
                Attrs::default(),
            )
            .unwrap();
        for b in 0..20 {
            fs.write_fbn(f, b, Block::Synthetic(i * 100 + b)).unwrap();
        }
    }
    println!("production volume: 30 files across 2 RAID-4 groups");

    // Weekly full image dump (the anchor snapshot stays on the filer).
    let mut full_tape = TapeDrive::new(TapePerf::dlt7000(), 1 << 30);
    let full = image_dump_full(&mut fs, &mut full_tape, "weekly.0").expect("full image dump");
    println!("weekly full image: {} blocks", full.blocks);

    // Monday: changes + a nightly incremental.
    let f0 = fs.namei("/data/record00").unwrap();
    fs.write_fbn(f0, 0, Block::Synthetic(777_001)).unwrap();
    let newf = fs
        .create(data, "monday-report", FileType::File, Attrs::default())
        .unwrap();
    fs.write_fbn(newf, 0, Block::Synthetic(555)).unwrap();
    let mut mon_tape = TapeDrive::new(TapePerf::dlt7000(), 1 << 30);
    let mon = image_dump_incremental(&mut fs, &mut mon_tape, "weekly.0", "nightly.mon")
        .expect("monday incremental");
    println!(
        "monday incremental: {} blocks (vs {} full)",
        mon.blocks, full.blocks
    );

    // Tuesday morning: a disk dies mid-operation. RAID masks it.
    fs.volume_mut().group_mut(0).unwrap().fail_disk(2).unwrap();
    assert!(fs
        .read_fbn(f0, 0)
        .unwrap()
        .same_content(&Block::Synthetic(777_001)));
    println!("\n*** disk 2 of group 0 failed — degraded reads still correct");
    fs.volume_mut()
        .group_mut(0)
        .unwrap()
        .reconstruct()
        .expect("rebuild");
    println!("replacement disk reconstructed from parity; volume healthy again");

    // Tuesday's changes + incremental (level 2 in the paper's terms:
    // C − B).
    fs.remove(data, "record29").unwrap();
    let tue_file = fs
        .create(data, "tuesday-report", FileType::File, Attrs::default())
        .unwrap();
    fs.write_fbn(tue_file, 0, Block::Synthetic(666)).unwrap();
    let mut tue_tape = TapeDrive::new(TapePerf::dlt7000(), 1 << 30);
    let tue = image_dump_incremental(&mut fs, &mut tue_tape, "nightly.mon", "nightly.tue")
        .expect("tuesday incremental");
    println!("tuesday incremental: {} blocks", tue.blocks);

    // Wednesday: total loss. The whole disk shelf burns down.
    println!("\n*** WEDNESDAY: complete volume loss ***");

    // Disaster recovery: new hardware, same geometry; apply full + both
    // incrementals in order.
    let mut replacement = Volume::new(geometry());
    image_restore(&mut full_tape, &mut replacement, &meter, &CostModel::zero()).expect("full");
    image_restore(&mut mon_tape, &mut replacement, &meter, &CostModel::zero()).expect("monday");
    image_restore(&mut tue_tape, &mut replacement, &meter, &CostModel::zero()).expect("tuesday");
    let mut recovered = Wafl::mount(
        replacement,
        nvram::NvramLog::new(32 << 20),
        WaflConfig::default(),
        Meter::new_shared(),
        CostModel::zero(),
    )
    .expect("recovered volume mounts with no fsck");

    // Verify: latest state, including every snapshot.
    let diffs = compare_trees(&mut fs, &mut recovered).expect("verify");
    assert!(diffs.is_empty(), "recovered volume diverged: {diffs:?}");
    assert!(recovered.namei("/data/tuesday-report").is_ok());
    assert!(recovered.namei("/data/record29").is_err());
    assert_eq!(recovered.snapshots().len(), fs.snapshots().len());
    println!(
        "recovered: active file system identical; {} snapshots intact ({})",
        recovered.snapshots().len(),
        recovered
            .snapshots()
            .iter()
            .map(|s| s.name.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("\ndisaster recovery complete — the system 'looks just like the system you dumped'");
}
