//! "Stupidity recovery" (paper §1): a user deletes a file by accident and
//! gets it back two ways — from an online snapshot (self-service), and
//! from a logical dump tape (single-file restore).
//!
//! Run with: `cargo run --example stupidity_recovery`

use wafl_backup::prelude::*;

fn main() {
    let geometry = VolumeGeometry::uniform(1, 4, 4096, DiskPerf::ideal());
    let mut fs = Wafl::format(Volume::new(geometry), WaflConfig::default()).expect("format");

    // A user's home directory with a precious file.
    let home = fs
        .create(INO_ROOT, "home", FileType::Dir, Attrs::default())
        .unwrap();
    let alice = fs
        .create(home, "alice", FileType::Dir, Attrs::default())
        .unwrap();
    let thesis = fs
        .create(alice, "thesis.tex", FileType::File, Attrs::default())
        .unwrap();
    for fbn in 0..64 {
        fs.write_fbn(thesis, fbn, Block::Synthetic(9000 + fbn))
            .unwrap();
    }
    fs.set_size(thesis, 64 * 4096 - 500).unwrap();
    println!("wrote /home/alice/thesis.tex ({} bytes)", 64 * 4096 - 500);

    // The filer takes scheduled snapshots ("hourly snapshots taken every 4
    // hours ... plus daily snapshots"), and the operator runs nightly
    // dumps. Run the paper's schedule for a simulated day: the rotation
    // keeps hourly.0..5 with the oldest aging out.
    let schedule = wafl_backup::wafl::schedule::SnapshotSchedule::default();
    for _ in 0..7 {
        schedule
            .take(&mut fs, "hourly")
            .expect("scheduled snapshot");
    }
    schedule.take(&mut fs, "daily").expect("daily snapshot");
    assert_eq!(fs.snapshots().len(), 7, "6 hourlies + 1 daily retained");
    let hourly = fs.snapshot_by_name("hourly.0").expect("newest hourly").id;
    let mut tape = TapeDrive::new(TapePerf::dlt7000(), 1 << 30);
    let mut catalog = DumpCatalog::new();
    dump(&mut fs, &mut tape, &mut catalog, &DumpOptions::default()).expect("nightly dump");
    println!("protection in place: snapshot 'hourly.0' + nightly dump tape");

    // Disaster strikes: rm thesis.tex.
    fs.remove(alice, "thesis.tex").unwrap();
    fs.cp().unwrap();
    assert!(fs.namei("/home/alice/thesis.tex").is_err());
    println!("\n*** rm thesis.tex — the file is gone from the active file system");

    // Recovery 1: the snapshot still has it; users "recover their own
    // files" without the operator.
    {
        let mut view = fs.snap_view(hourly).expect("snapshot view");
        let ino = view.namei("/home/alice/thesis.tex").expect("in snapshot");
        let di = view.read_inode(ino).unwrap().expect("inode");
        let slots = view.file_slots(&di).unwrap();
        let first = view.read_file_block(&slots, 0).unwrap();
        assert!(first.same_content(&Block::Synthetic(9000)));
        println!(
            "recovery 1 (snapshot): found thesis.tex in 'hourly.0', {} bytes, content intact",
            di.root.size
        );
    }

    // Recovery 2: single-file restore from tape — "a logical restore can
    // locate the file on tape, and restore only that file".
    let out = restore_single(&mut fs, &mut tape, "/home/alice/thesis.tex", "/home/alice")
        .expect("single-file restore");
    assert_eq!(out.files, 1);
    let back = fs.namei("/home/alice/thesis.tex").expect("restored");
    let st = fs.stat(back).unwrap();
    assert_eq!(st.size, 64 * 4096 - 500);
    for fbn in 0..64 {
        assert!(fs
            .read_fbn(back, fbn)
            .unwrap()
            .same_content(&Block::Synthetic(9000 + fbn)));
    }
    println!(
        "recovery 2 (tape): restored exactly {} file ({} blocks) — nothing else touched",
        out.files, out.data_blocks
    );

    // Contrast: physical backup cannot do this. "Restoring a subset of the
    // file system ... is not very practical. The entire file system must
    // be recreated."
    println!(
        "\ncontrast: an image tape would require restoring all {} used blocks to get one file back",
        fs.active_blocks()
    );
}
